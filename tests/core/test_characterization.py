"""Top-level characterize() verdicts across the zoo."""

import pytest

from repro.core import characterize
from repro.core.characterization import Verdict
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    constant_task,
    identity_task,
    set_consensus_task,
)


class TestVerdicts:
    def test_identity_solvable(self):
        c = characterize(identity_task(2), max_rounds=1)
        assert c.verdict is Verdict.SOLVABLE
        assert c.rounds == 0

    def test_constant_solvable(self):
        assert characterize(constant_task(2)).verdict is Verdict.SOLVABLE

    def test_consensus_unsolvable_all_rounds(self):
        c = characterize(binary_consensus_task(2))
        assert c.verdict is Verdict.UNSOLVABLE
        assert c.certificate.kind == "connectivity"
        assert c.solvability is None

    def test_set_consensus_unsolvable_all_rounds(self):
        c = characterize(set_consensus_task(3, 2))
        assert c.verdict is Verdict.UNSOLVABLE
        assert c.certificate.kind == "sperner"

    def test_approx_agreement_solvable_with_protocol(self):
        task = approximate_agreement_task(2, 3)
        c = characterize(task, max_rounds=2)
        assert c.verdict is Verdict.SOLVABLE
        protocol = c.synthesize_protocol()
        protocol.run_and_validate(task, {0: 0, 1: 3})

    def test_without_certificates_falls_back_to_search(self):
        c = characterize(
            binary_consensus_task(2), max_rounds=1, try_impossibility=False
        )
        assert c.verdict is Verdict.UNSOLVABLE_UP_TO_BOUND
        assert c.certificate is None
        assert c.solvability is not None

    def test_budget_exhaustion_gives_unknown(self):
        c = characterize(
            set_consensus_task(3, 2),
            max_rounds=2,
            node_budget=100,
            try_impossibility=False,
        )
        assert c.verdict is Verdict.UNKNOWN

    def test_synthesize_on_unsolvable_rejected(self):
        c = characterize(binary_consensus_task(2))
        with pytest.raises(ValueError):
            c.synthesize_protocol()

    def test_repr(self):
        c = characterize(identity_task(2))
        assert "solvable" in repr(c)

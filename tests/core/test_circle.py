"""E10: the simulation circle — snapshot ⇆ immediate snapshot ⇆ iterated IS.

Three directions, all executable in this library:

* registers → one-shot IS: the Borowsky–Gafni levels algorithm generates
  exactly the standard chromatic subdivision (also in test_protocol_complex);
* IIS → atomic snapshots: the Figure 2 emulation (test_emulation);
* the *composition*: a snapshot-model protocol run over the emulation whose
  one-shot memories are themselves... the oracle — and, as a final twist, a
  decision protocol synthesized for the IIS model run over registers.

Here we close the loop end to end: run Figure 1 over Figure 2 and check the
emulated snapshot states could have come from a run of Figure 1 on real
registers (same legality conditions), and run one protocol through both
stacks.
"""

from hypothesis import given, settings, strategies as st

from repro.core.emulation import EmulationHarness
from repro.core.protocol_synthesis import (
    synthesize_iis_protocol,
    synthesize_snapshot_protocol,
)
from repro.core.solvability import solve_task
from repro.runtime.full_information import run_k_shot
from repro.runtime.scheduler import RandomSchedule, RoundRobinSchedule
from repro.tasks import approximate_agreement_task


class TestEmulatedEqualsNative:
    def test_round_robin_k1_self_inclusion(self):
        """Under round robin the emulated states are legal Figure-1 states.

        (They need not match the native round-robin outcome: the emulation's
        round-robin schedule induces a different linearization — P0's whole
        write/snapshot completes on memory 0 before P1 catches up.)"""
        native = run_k_shot({0: "a", 1: "b"}, 1)
        emulated = EmulationHarness({0: "a", 1: "b"}, 1).run(RoundRobinSchedule())
        assert set(emulated.final_states) == set(native)
        for pid, state in emulated.final_states.items():
            assert state[pid] == ("a", "b")[pid]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_emulated_states_are_native_reachable_k1(self, seed):
        """For k=1, n=2 the native protocol has exactly 3 outcomes; every
        emulated outcome must be one of them."""
        from repro.runtime.full_information import k_shot_full_information
        from repro.runtime.ops import Decide
        from repro.runtime.scheduler import enumerate_executions

        def factory(pid, value):
            def make(p):
                def protocol():
                    view = yield from k_shot_full_information(p, value, 1)
                    yield Decide(view)

                return protocol()

            return make

        native_outcomes = {
            tuple(sorted(r.decisions.items()))
            for r in enumerate_executions(
                {0: factory(0, "a"), 1: factory(1, "b")}, 2
            )
        }
        emulated = EmulationHarness({0: "a", 1: "b"}, 1).run(RandomSchedule(seed))
        emulated.check_legality()
        assert tuple(sorted(emulated.final_states.items())) in native_outcomes


class TestBothStacks:
    def test_synthesized_protocol_through_both_models(self):
        """One decision map, three execution stacks, all Δ-valid:
        IIS oracle, levels-on-registers, and (implicitly, via the other
        tests) registers-on-IIS."""
        task = approximate_agreement_task(2, 3)
        result = solve_task(task, max_rounds=2)
        inputs = {0: 0, 1: 3}
        iis = synthesize_iis_protocol(result)
        levels = synthesize_snapshot_protocol(result, 2)
        for seed in range(10):
            iis.run_and_validate(task, inputs, RandomSchedule(seed))
            levels.run_and_validate(task, inputs, RandomSchedule(seed))

    def test_renaming_through_both_stacks(self):
        from repro.tasks.renaming import RenamingProtocol

        protocol = RenamingProtocol({0: 5, 1: 9})
        native = protocol.run(over_iis=False)
        emulated = protocol.run(over_iis=True)
        protocol.validate(native, participants=2)
        protocol.validate(emulated, participants=2)

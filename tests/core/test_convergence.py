"""E8: simplex agreement (Section 5) — NCSASS protocol and Theorem 5.1."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.approximation import iterated_with_embedding
from repro.core.convergence import solve_ncsass, theorem_5_1_witness
from repro.core.solvability import SolvabilityStatus
from repro.runtime.scheduler import RandomSchedule
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
)
from repro.topology.subdivision import Subdivision
from repro.topology.vertex import Vertex, vertices_of


def base(n):
    return SimplicialComplex.from_vertices(vertices_of(range(n + 1)))


@pytest.fixture(scope="module")
def ncsass_2d():
    target = iterated_with_embedding(base(2), 2, "sds")
    return solve_ncsass(target.subdivision, target.embedding, max_k=4)


class TestNCSASS:
    def test_round_robin_output_valid(self, ncsass_2d):
        outputs = ncsass_2d.run()
        ncsass_2d.validate(outputs)
        assert set(outputs) == {0, 1, 2}

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32), st.floats(0, 1))
    def test_random_schedules_valid(self, ncsass_2d, seed, block_probability):
        outputs = ncsass_2d.run(
            RandomSchedule(seed, block_probability=block_probability)
        )
        ncsass_2d.validate(outputs)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sets(st.integers(0, 2), min_size=1, max_size=2),
    )
    def test_crashed_participants_shrink_the_carrier(
        self, ncsass_2d, seed, crash
    ):
        outputs, participants = ncsass_2d.run_with_participants(
            RandomSchedule(seed, crash_pids=sorted(crash))
        )
        # Section 3.3: crashed processes that took steps still participate,
        # so the carrier condition is relative to the participating set.
        ncsass_2d.validate(outputs, participants)

    def test_solo_participant_lands_on_own_corner_face(self, ncsass_2d):
        outputs, participants = ncsass_2d.run_with_participants(
            RandomSchedule(0, crash_pids=[1, 2], max_crash_delay=0)
        )
        assert set(outputs) == {0}
        assert participants == frozenset({0})
        ncsass_2d.validate(outputs, participants)
        # Solo: the output's carrier must be the lone corner itself.
        target = ncsass_2d.target
        assert target.carrier(outputs[0]).dimension == 0

    def test_1d_target(self):
        target = iterated_with_embedding(base(1), 2, "sds")
        protocol = solve_ncsass(target.subdivision, target.embedding, max_k=5)
        outputs = protocol.run()
        protocol.validate(outputs)


class TestTheorem51:
    def test_standard_target_identity_level(self):
        target = iterated_with_embedding(base(2), 1, "sds")
        result = theorem_5_1_witness(target.subdivision, max_rounds=2)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 1

    def test_iterated_1d_target(self):
        target = iterated_with_embedding(base(1), 2, "sds")
        result = theorem_5_1_witness(target.subdivision, max_rounds=3)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 2

    def test_iterated_2d_target(self):
        """169-triangle chromatic target: k=1 refuted by arc consistency
        alone, k=2 found backtrack-free (one node per vertex)."""
        target = iterated_with_embedding(base(2), 2, "sds")
        result = theorem_5_1_witness(target.subdivision, max_rounds=2)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 2
        assert result.levels[-1].nodes_explored == len(
            result.subdivision.complex.vertices
        )

    def test_nonstandard_chromatic_subdivision_of_edge(self):
        """A 5-edge properly-colored path is a chromatic subdivision of s¹
        that is NOT any SDS^k (those have 3^k edges) — Theorem 5.1 still
        finds a color/carrier-preserving map from SDS^2 (9 edges)."""
        corners = vertices_of(range(2))
        interior = [Vertex(i % 2, ("p", i)) for i in (1, 0, 1, 0)]
        chain = [corners[0], interior[1], interior[0], interior[3], interior[2], corners[1]]
        # Recolor to alternate properly: 0,1,0,1,0,1 along the path.
        chain = [Vertex(i % 2, ("path", i)) for i in range(6)]
        chain[0] = corners[0]
        chain[-1] = corners[1]
        edges = [Simplex([a, b]) for a, b in zip(chain, chain[1:])]
        complex_ = SimplicialComplex(edges)
        edge = Simplex(corners)
        carriers = {v: edge for v in complex_.vertices}
        carriers[corners[0]] = Simplex([corners[0]])
        carriers[corners[1]] = Simplex([corners[1]])
        target = Subdivision(SimplicialComplex([edge]), complex_, carriers)
        target.validate(chromatic=True)
        result = theorem_5_1_witness(target, max_rounds=3)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 2  # 3 edges too few, 9 suffice

    def test_witness_map_is_color_and_carrier_preserving(self):
        target = iterated_with_embedding(base(1), 1, "sds")
        result = theorem_5_1_witness(target.subdivision, max_rounds=2)
        mapping = result.decision_map
        assert mapping.is_color_preserving()
        source = iterated_standard_chromatic_subdivision(base(1), result.rounds)
        for vertex in source.complex.vertices:
            assert target.subdivision.carrier(mapping(vertex)).is_face_of(
                source.carrier(vertex)
            )


class TestCSASSProtocol:
    """Theorem 5.1 executed: chromatic simplex agreement at runtime."""

    @pytest.fixture(scope="class")
    def csass_2d(self):
        from repro.core.convergence import solve_csass

        target = iterated_with_embedding(base(2), 1, "sds")
        return solve_csass(target.subdivision, max_rounds=2)

    def test_round_robin(self, csass_2d):
        outputs = csass_2d.run()
        csass_2d.validate(outputs)
        assert set(outputs) == {0, 1, 2}

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_schedules(self, csass_2d, seed):
        outputs = csass_2d.run(RandomSchedule(seed, block_probability=0.5))
        csass_2d.validate(outputs)

    def test_outputs_carry_own_colors(self, csass_2d):
        outputs = csass_2d.run(RandomSchedule(7))
        for pid, vertex in outputs.items():
            assert vertex.color == pid

    def test_unreachable_level_raises(self):
        from repro.core.convergence import solve_csass

        target = iterated_with_embedding(base(1), 2, "sds")
        with pytest.raises(ValueError, match="raise max_rounds"):
            solve_csass(target.subdivision, max_rounds=1)

    def test_1d_nonstandard_target(self):
        from repro.core.convergence import solve_csass
        from repro.topology.subdivision import Subdivision

        corners = vertices_of(range(2))
        chain = [Vertex(i % 2, ("path", i)) for i in range(6)]
        chain[0], chain[-1] = corners[0], corners[1]
        edges = [Simplex([a, b]) for a, b in zip(chain, chain[1:])]
        edge = Simplex(corners)
        carriers = {v: edge for v in set(chain)}
        carriers[corners[0]] = Simplex([corners[0]])
        carriers[corners[1]] = Simplex([corners[1]])
        target = Subdivision(
            SimplicialComplex([edge]), SimplicialComplex(edges), carriers
        )
        protocol = solve_csass(target, max_rounds=3)
        assert protocol.rounds == 2
        outputs = protocol.run(RandomSchedule(5))
        protocol.validate(outputs)


class TestTaskBuilder:
    def test_csass_requires_single_simplex_base(self):
        from repro.tasks.simplex_agreement import chromatic_simplex_agreement_task
        from repro.topology.subdivision import trivial_subdivision

        two_edges = SimplicialComplex(
            [
                Simplex([Vertex(0), Vertex(1)]),
                Simplex([Vertex(1), Vertex(2)]),
            ]
        )
        with pytest.raises(ValueError):
            chromatic_simplex_agreement_task(trivial_subdivision(two_edges))

    def test_csass_task_shape(self):
        from repro.tasks.simplex_agreement import chromatic_simplex_agreement_task
        from repro.topology.standard_chromatic import standard_chromatic_subdivision

        sds = standard_chromatic_subdivision(base(2))
        task = chromatic_simplex_agreement_task(sds)
        assert task.input_complex == sds.base
        assert task.output_complex == sds.complex
        # Solo corner executions must output the corner itself.
        corner = Simplex([Vertex(0)])
        candidates = task.candidate_decisions(corner, 0)
        assert len(candidates) == 1
        assert sds.carrier(candidates[0]).dimension == 0

"""Cross-validation: certificates and the search engine must never disagree.

Random two-process tasks are generated from a seed; for each, we check the
global soundness invariants that tie the library together:

* an impossibility certificate ⟹ the exhaustive search finds no map at any
  level it completes;
* a SAT answer ⟹ no certificate fires, the map validates, and the
  synthesized protocol's outputs satisfy Δ on every enumerated schedule.

This is the strongest internal-consistency test the library has: any
soundness bug in the solver, the certificates, the SDS construction, or the
synthesis layer shows up as a disagreement here.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.impossibility import try_all_impossibility_proofs
from repro.core.protocol_synthesis import synthesize_iis_protocol
from repro.core.solvability import SolvabilityStatus, solve_task
from repro.core.task import Task
from repro.runtime.scheduler import enumerate_executions
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex


def random_two_process_task(seed: int) -> Task:
    """A random bounded task for two processes.

    Inputs: each process holds a value in {0, 1}.  Outputs: values in
    {0, 1, 2}.  Δ: for each input edge, a random non-empty set of allowed
    output edges; for each input vertex, the solo outputs induced by the
    edges that contain it (so Δ is monotone enough to be a genuine task).
    """
    rng = random.Random(seed)
    input_values = (0, 1)
    output_values = (0, 1, 2)
    input_tops = [
        Simplex([Vertex(0, a), Vertex(1, b)])
        for a in input_values
        for b in input_values
    ]
    input_complex = SimplicialComplex(input_tops)
    all_output_edges = [
        Simplex([Vertex(0, x), Vertex(1, y)])
        for x in output_values
        for y in output_values
    ]
    delta: dict[Simplex, frozenset[Simplex]] = {}
    for edge in input_tops:
        chosen = [e for e in all_output_edges if rng.random() < 0.4]
        if not chosen:
            chosen = [rng.choice(all_output_edges)]
        delta[edge] = frozenset(chosen)
    # Solo executions: allow the projections of every edge-allowed tuple
    # for every input edge containing the vertex (a standard monotone
    # completion), which keeps Δ well-formed.
    output_tops = set()
    for edges in delta.values():
        output_tops.update(edges)
    output_complex = SimplicialComplex(output_tops)
    for vertex in input_complex.vertices:
        solo = Simplex([vertex])
        allowed: set[Simplex] = set()
        for edge in input_tops:
            if vertex in edge:
                for tuple_ in delta[edge]:
                    allowed.add(Simplex([tuple_.vertex_of_color(vertex.color)]))
        delta[solo] = frozenset(allowed)
    return Task(
        name=f"random-task(seed={seed})",
        input_complex=input_complex,
        output_complex=output_complex,
        delta=delta,
    )


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_certificates_never_contradict_search(seed):
    task = random_two_process_task(seed)
    certificate = try_all_impossibility_proofs(task)
    result = solve_task(task, max_rounds=2)
    if certificate is not None:
        assert result.status is not SolvabilityStatus.SOLVABLE, (
            f"{task.name}: certificate {certificate.kind} fired but the "
            f"search found a map at b={result.rounds}"
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sat_answers_execute_correctly(seed):
    task = random_two_process_task(seed)
    result = solve_task(task, max_rounds=2)
    if result.status is not SolvabilityStatus.SOLVABLE:
        return
    protocol = synthesize_iis_protocol(result)
    for a in (0, 1):
        for b in (0, 1):
            inputs = {0: a, 1: b}
            for run in enumerate_executions(protocol.factories(inputs), 2):
                assert task.validate_outputs(inputs, run.decisions), (
                    f"{task.name}: synthesized protocol produced forbidden "
                    f"output {run.decisions} on {inputs}"
                )


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_solvability_is_relabeling_invariant(seed):
    """Tasks are anonymous: renaming processors cannot change the verdict.

    Any failure here would mean an id-dependent bug somewhere in the SDS
    construction, the carrier bookkeeping, or the search.
    """
    from repro.core.task import relabel_task

    task = random_two_process_task(seed)
    swapped = relabel_task(task, {0: 1, 1: 0})
    original = solve_task(task, max_rounds=1)
    relabeled = solve_task(swapped, max_rounds=1)
    assert original.status == relabeled.status
    assert original.rounds == relabeled.rounds


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_level_monotonicity(seed):
    """If a map exists at level b, one exists at level b+1.

    (Compose with any color/carrier-preserving map SDS^{b+1} → SDS^b —
    here checked extensionally by re-running the solver.)
    """
    task = random_two_process_task(seed)
    result = solve_task(task, max_rounds=2)
    if result.status is SolvabilityStatus.SOLVABLE and result.rounds < 2:
        higher = solve_task(
            task, max_rounds=result.rounds + 1, min_rounds=result.rounds + 1
        )
        assert higher.status is SolvabilityStatus.SOLVABLE

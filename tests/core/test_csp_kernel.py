"""The bitset CSP kernel against its reference oracle.

The kernel (:mod:`repro.core.csp_kernel`) must be *extensionally identical*
to the naive object-level search on every instance: same verdict at every
level, and — because variable/value ordering is mirrored and backjumping is
pruning-only — the same first decision map on satisfiable levels.  Node
counts may differ (conflict-directed backjumping skips refuted subtrees),
which is exactly the speedup being purchased.
"""

from __future__ import annotations

import pytest

from repro.core.csp_kernel import compile_level, kernel_search, root_domain_chunks
from repro.core.solvability import (
    SearchOptions,
    SolvabilityStatus,
    solve_task,
    validate_decision_map,
)
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    chromatic_simplex_agreement_task,
    constant_task,
    identity_task,
    set_consensus_task,
)
from repro.topology.complex import SimplicialComplex
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
    standard_chromatic_subdivision,
)
from repro.topology.vertex import vertices_of


def _csass_task():
    base = SimplicialComplex.from_vertices(vertices_of(range(3)))
    return chromatic_simplex_agreement_task(standard_chromatic_subdivision(base))

KERNEL = SearchOptions(kernel=True)
NAIVE = SearchOptions(kernel=False)

# The n <= 3 task zoo; (factory, max_rounds) pairs keep every case under a
# few seconds even on the naive path (b <= 2 throughout).
EQUIVALENCE_GRID = [
    (lambda: identity_task(2), 1),
    (lambda: identity_task(3), 1),
    (lambda: constant_task(2), 1),
    (lambda: constant_task(3), 1),
    (lambda: binary_consensus_task(2), 2),
    (lambda: binary_consensus_task(3), 1),
    (lambda: set_consensus_task(2, 1), 1),
    (lambda: set_consensus_task(2, 2), 1),
    (lambda: set_consensus_task(3, 2), 1),
    (lambda: set_consensus_task(3, 3), 1),
    (lambda: approximate_agreement_task(2, 3), 2),
    (lambda: approximate_agreement_task(2, 5), 2),
    (lambda: approximate_agreement_task(3, 2), 1),
    (lambda: approximate_agreement_task(3, 3), 2),
    (_csass_task, 1),
]


class TestKernelNaiveEquivalence:
    @pytest.mark.parametrize("factory,max_rounds", EQUIVALENCE_GRID)
    def test_same_status_and_map(self, factory, max_rounds):
        kernel_result = solve_task(factory(), max_rounds, options=KERNEL)
        naive_result = solve_task(factory(), max_rounds, options=NAIVE)
        assert kernel_result.status is naive_result.status
        assert kernel_result.rounds == naive_result.rounds
        assert len(kernel_result.levels) == len(naive_result.levels)
        for kernel_level, naive_level in zip(
            kernel_result.levels, naive_result.levels
        ):
            assert kernel_level.satisfiable == naive_level.satisfiable
            assert kernel_level.exhausted and naive_level.exhausted
        if kernel_result.decision_map is not None:
            # Identical first-found map, and it validates on both paths.
            assert (
                kernel_result.decision_map.as_dict()
                == naive_result.decision_map.as_dict()
            )
            validate_decision_map(
                kernel_result.subdivision,
                factory(),
                kernel_result.decision_map,
            )

    @pytest.mark.parametrize(
        "options",
        [
            SearchOptions(False, True, True, True),
            SearchOptions(True, False, True, True),
            SearchOptions(True, True, False, True),
            SearchOptions(False, False, False, True),
        ],
        ids=["no-ac3", "no-fc", "no-adjacency", "none"],
    )
    def test_ablated_kernel_matches_ablated_naive(self, options):
        naive_options = SearchOptions(
            options.arc_consistency,
            options.forward_checking,
            options.adjacency_order,
            False,
        )
        for factory, max_rounds in [
            (lambda: approximate_agreement_task(2, 3), 2),
            (lambda: binary_consensus_task(2), 1),
            (lambda: set_consensus_task(3, 2), 1),
        ]:
            kernel_result = solve_task(factory(), max_rounds, options=options)
            naive_result = solve_task(factory(), max_rounds, options=naive_options)
            assert kernel_result.status is naive_result.status
            if kernel_result.decision_map is not None:
                assert (
                    kernel_result.decision_map.as_dict()
                    == naive_result.decision_map.as_dict()
                )


class TestKernelInternals:
    def test_compiled_level_shape(self):
        task = approximate_agreement_task(2, 3)
        subdivision = iterated_standard_chromatic_subdivision(task.input_complex, 1)
        compiled = compile_level(subdivision, task)
        assert not compiled.infeasible
        assert len(compiled.verts) == len(subdivision.complex.vertices)
        assert len(compiled.domains) == len(compiled.verts)
        for i, domain in enumerate(compiled.domains):
            assert domain == (1 << len(compiled.cands[i])) - 1
        # Every constraint's members index real vertices, masks cover domains.
        for vids, masks in zip(compiled.con_vars, compiled.con_masks):
            assert len(vids) >= 2
            assert len(masks) == len(vids)
            for position, i in enumerate(vids):
                assert len(masks[position]) == len(compiled.cands[i])

    def test_conflicts_and_backjumps_are_counted(self):
        # setcons(3,2) at b=1 is UNSAT and forces real backtracking.
        task = set_consensus_task(3, 2)
        subdivision = iterated_standard_chromatic_subdivision(task.input_complex, 1)
        compiled = compile_level(subdivision, task)
        mapping, stats = kernel_search(compiled, 2_000_000)
        assert mapping is None
        assert stats.exhausted
        assert stats.conflicts > 0
        assert stats.nodes > 0

    def test_budget_abort_reports_not_exhausted(self):
        task = set_consensus_task(3, 2)
        subdivision = iterated_standard_chromatic_subdivision(task.input_complex, 1)
        compiled = compile_level(subdivision, task)
        mapping, stats = kernel_search(compiled, 10)
        assert mapping is None
        assert not stats.exhausted
        assert stats.nodes == 11  # the aborting node is counted

    def test_root_domain_chunks_partition_the_domain(self):
        task = approximate_agreement_task(2, 5)
        subdivision = iterated_standard_chromatic_subdivision(task.input_complex, 1)
        compiled = compile_level(subdivision, task)
        for n_chunks in (1, 2, 3, 7):
            chunks = root_domain_chunks(
                compiled,
                arc_consistency=True,
                adjacency_order=True,
                n_chunks=n_chunks,
            )
            assert len(chunks) == n_chunks
            union = 0
            for chunk in chunks:
                assert union & chunk == 0  # disjoint
                union |= chunk
            reference = root_domain_chunks(
                compiled, arc_consistency=True, adjacency_order=True, n_chunks=1
            )[0]
            assert union == reference  # cover

    def test_chunked_searches_union_to_serial_verdict(self):
        task = approximate_agreement_task(2, 3)
        subdivision = iterated_standard_chromatic_subdivision(task.input_complex, 2)
        compiled = compile_level(subdivision, task)
        serial_mapping, _ = kernel_search(compiled, 2_000_000)
        assert serial_mapping is not None
        chunks = root_domain_chunks(
            compiled, arc_consistency=True, adjacency_order=True, n_chunks=2
        )
        first_found = None
        for chunk in chunks:
            mapping, stats = kernel_search(compiled, 2_000_000, root_restrict=chunk)
            assert stats.exhausted
            if mapping is not None and first_found is None:
                first_found = mapping
        assert first_found == serial_mapping


class TestBudgetAndParallelPaths:
    """UNKNOWN via the node budget, serial and parallel alike."""

    def test_serial_sweep_unknown(self):
        result = solve_task(set_consensus_task(3, 2), max_rounds=1, node_budget=5)
        assert result.status is SolvabilityStatus.UNKNOWN
        assert result.levels[-1].exhausted is False

    def test_parallel_sweep_unknown(self):
        result = solve_task(
            set_consensus_task(3, 2),
            max_rounds=1,
            node_budget=5,
            max_workers=2,
        )
        assert result.status is SolvabilityStatus.UNKNOWN
        assert any(not level.exhausted for level in result.levels)

    def test_single_level_split_unknown(self):
        # min_rounds == max_rounds triggers the within-level domain split.
        result = solve_task(
            set_consensus_task(3, 2),
            max_rounds=1,
            min_rounds=1,
            node_budget=5,
            max_workers=2,
        )
        assert result.status is SolvabilityStatus.UNKNOWN
        assert len(result.levels) == 1
        assert result.levels[0].exhausted is False

    def test_single_level_split_matches_serial_sat(self):
        serial = solve_task(
            approximate_agreement_task(2, 3), max_rounds=2, min_rounds=2
        )
        split = solve_task(
            approximate_agreement_task(2, 3),
            max_rounds=2,
            min_rounds=2,
            max_workers=2,
        )
        assert split.status is serial.status is SolvabilityStatus.SOLVABLE
        assert split.rounds == serial.rounds == 2
        assert split.decision_map.as_dict() == serial.decision_map.as_dict()

    def test_single_level_split_matches_serial_unsat(self):
        serial = solve_task(binary_consensus_task(2), max_rounds=1, min_rounds=1)
        split = solve_task(
            binary_consensus_task(2), max_rounds=1, min_rounds=1, max_workers=2
        )
        assert split.status is serial.status
        assert split.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND
        assert split.levels[0].exhausted


class TestCacheHooks:
    def test_clear_intern_caches_clears_task_memos(self):
        from repro.core.task import clear_task_caches
        from repro.topology.interning import clear_intern_caches

        task = approximate_agreement_task(2, 3)
        solve_task(task, max_rounds=1, options=KERNEL)
        assert task._candidate_cache or task._projection_cache
        clear_intern_caches()
        assert not task._candidate_cache and not task._projection_cache
        # And the hook is idempotent / callable directly.
        assert clear_task_caches() >= 0

    def test_candidate_decisions_memo_returns_shared_list(self):
        task = set_consensus_task(2, 1)
        simplex = next(iter(task.input_complex.maximal_simplices))
        color = next(iter(simplex.colors))
        first = task.candidate_decisions(simplex, color)
        second = task.candidate_decisions(simplex, color)
        assert first is second
        task.clear_delta_caches()
        third = task.candidate_decisions(simplex, color)
        assert third == first and third is not first

    def test_pickled_task_drops_memos(self):
        import pickle

        task = approximate_agreement_task(2, 3)
        solve_task(task, max_rounds=1, options=KERNEL)
        clone = pickle.loads(pickle.dumps(task))
        assert clone._candidate_cache == {}
        assert clone._projection_cache == {}
        assert clone == task


class TestExhaustionCertificate:
    def test_unsat_result_yields_certificate(self):
        from repro.core.impossibility import exhaustion_certificate

        result = solve_task(binary_consensus_task(2), max_rounds=2)
        certificate = exhaustion_certificate(result)
        assert certificate is not None
        assert certificate.kind == "exhaustive-search"
        assert len(certificate.checked_facts) == len(result.levels)

    def test_budget_stopped_result_yields_none(self):
        from repro.core.impossibility import exhaustion_certificate

        result = solve_task(set_consensus_task(3, 2), max_rounds=1, node_budget=5)
        assert exhaustion_certificate(result) is None

    def test_solvable_result_yields_none(self):
        from repro.core.impossibility import exhaustion_certificate

        result = solve_task(identity_task(2), max_rounds=1)
        assert exhaustion_certificate(result) is None

    def test_type_error_on_non_result(self):
        from repro.core.impossibility import exhaustion_certificate

        with pytest.raises(TypeError):
            exhaustion_certificate("not a result")

"""Differential suite: bitset kernel vs. naive search on *randomized* tasks.

``test_csp_kernel.py`` already locks kernel-vs-naive agreement over the task
zoo; this suite replaces the curated instances with the
:mod:`tests.strategies` task generator, whose Δ relations vary from
consensus-like (one allowed tuple, unsolvable) to identity-like (the full
product, trivially solvable) — the spectrum where a compilation bug would
make the two searches drift apart.
"""

from hypothesis import given, settings

from repro.core.solvability import SearchOptions, solve_task, validate_decision_map
from tests.strategies import tasks

KERNEL = SearchOptions(kernel=True)
NAIVE = SearchOptions(kernel=False)


class TestKernelDifferential:
    @given(tasks())
    @settings(max_examples=20)
    def test_verdicts_and_first_maps_agree(self, task):
        kernel_result = solve_task(task, max_rounds=1, options=KERNEL)
        naive_result = solve_task(task, max_rounds=1, options=NAIVE)
        assert kernel_result.status is naive_result.status
        assert kernel_result.rounds == naive_result.rounds
        for kernel_level, naive_level in zip(
            kernel_result.levels, naive_result.levels
        ):
            assert kernel_level.satisfiable == naive_level.satisfiable
            assert kernel_level.exhausted and naive_level.exhausted
        if kernel_result.decision_map is not None:
            # Both searches order values identically, so SAT answers must
            # find the *same first* decision map, not just equivalent ones.
            assert (
                kernel_result.decision_map.as_dict()
                == naive_result.decision_map.as_dict()
            )
            validate_decision_map(
                kernel_result.subdivision,
                task,
                kernel_result.decision_map,
            )

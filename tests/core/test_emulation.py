"""E3: the Figure 2 emulation implements atomic snapshots (Prop 4.1).

Every run's trace is put through the snapshot legality checker (the
conditions equivalent to linearizability for single-writer snapshot
objects), across round-robin, random, block-heavy and crashy schedules, and
across *all* interleavings for small instances.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.emulation import (
    EmulationHarness,
    IISEmulatedMemory,
    ReadTuple,
    WriteTuple,
    extract_snapshot,
    intersection_of,
    union_of,
)
from repro.runtime.ops import Decide
from repro.runtime.scheduler import (
    RandomSchedule,
    RoundRobinSchedule,
    Scheduler,
    enumerate_executions,
)


class TestCollectionAlgebra:
    def test_union_and_intersection(self):
        a = frozenset({WriteTuple(0, 1, "x")})
        b = frozenset({WriteTuple(0, 1, "x"), WriteTuple(1, 1, "y")})
        collection = frozenset({a, b})
        assert union_of(collection) == b
        assert intersection_of(collection) == a

    def test_empty_collection(self):
        assert union_of(frozenset()) == frozenset()
        assert intersection_of(frozenset()) == frozenset()

    def test_extract_snapshot_takes_highest_seq(self):
        visible = frozenset(
            {
                WriteTuple(0, 1, "old"),
                WriteTuple(0, 2, "new"),
                ReadTuple(1, 1),
            }
        )
        values, vector = extract_snapshot(visible, 2)
        assert values == ("new", None)
        assert vector == (2, 0)


class TestHarnessBasic:
    def test_round_robin_legal(self):
        harness = EmulationHarness({0: "a", 1: "b", 2: "c"}, 3)
        trace = harness.run(RoundRobinSchedule())
        trace.check_legality()
        assert set(trace.final_states) == {0, 1, 2}
        assert len(trace.writes) == 9
        assert len(trace.snapshots) == 9

    def test_solo_emulator_uses_one_memory_per_op(self):
        harness = EmulationHarness({0: "a"}, 2)
        trace = harness.run(RoundRobinSchedule())
        trace.check_legality()
        # Alone, the tuple is in the intersection immediately: one one-shot
        # memory per emulated operation.
        assert all(count == 1 for _pid, _kind, count in trace.memories_per_op)

    def test_full_information_content(self):
        harness = EmulationHarness({0: "a", 1: "b"}, 1)
        trace = harness.run(RoundRobinSchedule())
        # Every process's final state is a snapshot vector of the inputs.
        for pid, state in trace.final_states.items():
            assert state[pid] == ("a", "b")[pid]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            EmulationHarness({0: "a"}, 0)


class TestSchedules:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32), st.floats(0.0, 1.0))
    def test_random_schedules_legal(self, seed, block_probability):
        harness = EmulationHarness({0: 0, 1: 1, 2: 2}, 2)
        trace = harness.run(
            RandomSchedule(seed, block_probability=block_probability)
        )
        trace.check_legality()

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sets(st.integers(0, 2), max_size=2),
    )
    def test_crashy_schedules_legal_and_wait_free(self, seed, crash_pids):
        harness = EmulationHarness({0: 0, 1: 1, 2: 2}, 2)
        trace = harness.run(RandomSchedule(seed, crash_pids=sorted(crash_pids)))
        trace.check_legality()
        # Wait-freedom: every non-crashed process finished its k rounds.
        finished = set(trace.final_states)
        assert len(finished) >= 3 - len(crash_pids)

class TestExhaustive:
    def test_every_interleaving_produces_legal_trace(self):
        """Exhaustive Prop 4.1: every interleaving for n=2, k=1 is legal.

        The enumeration is driven manually (rather than through
        ``enumerate_executions``) because each replayed prefix needs a fresh
        harness so traces do not leak across runs.
        """
        inputs = {0: "a", 1: "b"}

        def replay(prefix):
            harness = EmulationHarness(inputs, 1)
            scheduler = Scheduler(
                {
                    pid: (lambda p, v=v, h=harness: h._protocol(p, v))
                    for pid, v in inputs.items()
                },
                2,
            )
            harness._clock = lambda: scheduler.time
            for action in prefix:
                scheduler.apply(action)
            return harness, scheduler

        stack = [()]
        completed = 0
        while stack:
            prefix = stack.pop()
            harness, scheduler = replay(prefix)
            if scheduler.all_done():
                harness.trace.final_states = dict(scheduler.result().decisions)
                harness.trace.check_legality()
                completed += 1
                continue
            assert len(prefix) < 60
            for action in reversed(scheduler.enabled_actions()):
                stack.append(prefix + (action,))
        assert completed >= 10  # many distinct interleavings, all legal


class TestMemoryConsumption:
    def test_contention_consumes_more_memories(self):
        solo = EmulationHarness({0: "a"}, 2).run(RoundRobinSchedule())
        contended = EmulationHarness({0: "a", 1: "b", 2: "c"}, 2).run(
            RoundRobinSchedule()
        )
        solo_avg = sum(c for _p, _k, c in solo.memories_per_op) / len(
            solo.memories_per_op
        )
        contended_avg = sum(c for _p, _k, c in contended.memories_per_op) / len(
            contended.memories_per_op
        )
        assert contended_avg >= solo_avg

    def test_nonblocking_not_starved_forever(self):
        # The end of Section 4: the emulation is non-blocking; in a bounded
        # protocol every emulator finishes — under every schedule we try.
        for seed in range(20):
            harness = EmulationHarness({0: 0, 1: 1}, 3)
            trace = harness.run(RandomSchedule(seed, block_probability=0.9))
            assert set(trace.final_states) == {0, 1}


class TestEmulatedMemoryAPI:
    def test_generic_protocol_over_emulated_memory(self):
        """IISEmulatedMemory works inside arbitrary generator protocols."""

        def factory(pid):
            def protocol():
                memory = IISEmulatedMemory(pid, 2)
                yield from memory.write(f"hello-{pid}")
                values, vector = yield from memory.snapshot()
                yield Decide(values)

            return protocol()

        s = Scheduler([factory, factory], 2)
        result = s.run(RoundRobinSchedule())
        assert result.decisions[0][0] == "hello-0"
        assert result.decisions[1][1] == "hello-1"

"""Emulation under adversarial and mixed schedules (E3's hard cases)."""

from hypothesis import given, settings, strategies as st

from repro.core.emulation import EmulationHarness
from repro.runtime.adversary import MaxContentionSchedule, StarvationSchedule
from repro.runtime.scheduler import RandomSchedule


class TestStarvationAdversary:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 3), st.integers(1, 3))
    def test_any_victim_any_k(self, victim, k):
        inputs = {0: "a", 1: "b", 2: "c", 3: "d"}
        harness = EmulationHarness(inputs, k)
        trace = harness.run(StarvationSchedule(victim), max_steps=300_000)
        trace.check_legality()
        assert len(trace.final_states) == 4

    def test_victim_sees_everyone(self):
        """Scheduled last, the victim's final state reflects all writes."""
        inputs = {0: "a", 1: "b", 2: "c"}
        harness = EmulationHarness(inputs, 1)
        trace = harness.run(StarvationSchedule(0))
        # Victim's snapshot happens after others finished their round.
        assert None not in trace.final_states[0]


class TestMaxContention:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 3))
    def test_all_sizes(self, n, k):
        inputs = {pid: pid for pid in range(n)}
        harness = EmulationHarness(inputs, k)
        trace = harness.run(MaxContentionSchedule(), max_steps=300_000)
        trace.check_legality()
        assert len(trace.final_states) == n

    def test_simultaneity_costs_extra_memories(self):
        """All-simultaneous blocks force the retry path of Figure 2: a
        fresh tuple is never in the first block's intersection when a peer
        writes the same memory, so ops take >= 2 memories."""
        inputs = {0: "a", 1: "b"}
        harness = EmulationHarness(inputs, 1)
        trace = harness.run(MaxContentionSchedule())
        trace.check_legality()
        counts = [c for _p, _k, c in trace.memories_per_op]
        assert max(counts) >= 2


class TestScheduleMixes:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.floats(0.0, 1.0),
        st.integers(1, 2),
        st.sets(st.integers(0, 2), max_size=1),
    )
    def test_random_parameter_sweep(self, seed, block_probability, k, crash):
        inputs = {0: 0, 1: 1, 2: 2}
        harness = EmulationHarness(inputs, k)
        trace = harness.run(
            RandomSchedule(
                seed,
                block_probability=block_probability,
                crash_pids=sorted(crash),
            ),
            max_steps=300_000,
        )
        trace.check_legality()
        assert len(trace.final_states) >= 3 - len(crash)

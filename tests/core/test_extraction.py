"""Extraction: hand-written protocols become machine-checked simplicial maps."""

import pytest

from repro.core.extraction import ExtractionError, extract_decision_map
from repro.runtime.iterated import iis_full_information
from repro.runtime.ops import Decide
from repro.tasks import (
    approximate_agreement_task,
    participating_set_task,
    set_consensus_task,
)


def fi_protocol_factories(decide):
    """Factories for a hand-written 1-round full-information protocol.

    ``decide(pid, view)`` maps the round-1 view to a value; the protocol
    decides the pair (view, value) per the extraction convention.
    """

    def for_inputs(inputs):
        def factory_for(pid, value):
            def factory(p):
                def protocol():
                    view = yield from iis_full_information(p, value, 1)
                    yield Decide((view, decide(p, view)))

                return protocol()

            return factory

        return {pid: factory_for(pid, value) for pid, value in inputs.items()}

    return for_inputs


class TestParticipatingSet:
    def test_hand_written_protocol_extracts(self):
        """'Output the set of pids you saw' solves participating-set; the
        extracted map is validated against Δ automatically."""
        task = participating_set_task(3)

        def decide(pid, view):
            return frozenset(q for q, _state in view)

        mapping, subdivision = extract_decision_map(
            fi_protocol_factories(decide), task, rounds=1
        )
        assert mapping.is_color_preserving()
        assert len(mapping.as_dict()) == len(subdivision.complex.vertices)


class TestSetConsensus:
    def test_min_seen_solves_trivial_variant(self):
        """'Decide the minimum id you saw' solves (3,3)-set consensus."""
        task = set_consensus_task(3, 3)

        def decide(pid, view):
            return min(q for q, _state in view)

        mapping, _sub = extract_decision_map(
            fi_protocol_factories(decide), task, rounds=1
        )
        assert mapping.is_simplicial()

    def test_min_seen_fails_hard_variant(self):
        """The same protocol does NOT solve (3,2)-set consensus at one
        round: some execution lets 3 distinct minima… no — minima collapse;
        what fails is Δ on the panchromatic executions where all three
        processes see only themselves (the all-singleton partition), giving
        3 distinct decisions."""
        task = set_consensus_task(3, 2)

        def decide(pid, view):
            return min(q for q, _state in view)

        with pytest.raises(ValueError):
            extract_decision_map(fi_protocol_factories(decide), task, rounds=1)


class TestWellDefinedness:
    def test_non_view_function_rejected(self):
        """A 'protocol' whose decision depends on hidden state (a shared
        mutable counter) is caught by the well-definedness check."""
        task = participating_set_task(2)
        calls = [0]

        def for_inputs(inputs):
            def factory_for(pid, value):
                def factory(p):
                    def protocol():
                        view = yield from iis_full_information(p, value, 1)
                        calls[0] += 1
                        cheat = frozenset(
                            q for q, _s in view
                        ) if calls[0] % 3 else frozenset({p})
                        yield Decide((view, cheat))

                    return protocol()

                return factory

            return {pid: factory_for(pid, value) for pid, value in inputs.items()}

        with pytest.raises(ValueError):
            extract_decision_map(for_inputs, task, rounds=1)

    def test_missing_view_convention_rejected(self):
        task = participating_set_task(2)

        def for_inputs(inputs):
            def factory_for(pid, value):
                def factory(p):
                    def protocol():
                        view = yield from iis_full_information(p, value, 1)
                        yield Decide(frozenset(q for q, _s in view))  # no pair

                    return protocol()

                return factory

            return {pid: factory_for(pid, value) for pid, value in inputs.items()}

        with pytest.raises(ExtractionError, match="exposing"):
            extract_decision_map(for_inputs, task, rounds=1)


class TestCrashTotality:
    def test_crash_schedules_do_not_change_the_map(self):
        """A one-crash budget only adds executions whose survivors realize
        views already realized crash-free: the extracted map is identical."""
        task = participating_set_task(2)

        def decide(pid, view):
            return frozenset(q for q, _state in view)

        crash_free, _ = extract_decision_map(
            fi_protocol_factories(decide), task, rounds=1
        )
        crashy, domain = extract_decision_map(
            fi_protocol_factories(decide), task, rounds=1, max_crashes=1
        )
        assert crashy.as_dict() == crash_free.as_dict()
        assert len(crashy.as_dict()) == len(domain.complex.vertices)


class TestTotalityDiagnostics:
    def _single_schedule_runner(self, factories, n_processes):
        """One deterministic round-robin run: every process lands in a single
        simultaneous block, so only the panchromatic views are realized."""
        from repro.runtime.scheduler import RoundRobinSchedule, Scheduler

        scheduler = Scheduler(
            factories, n_processes, record_events=True, track_history=True
        )
        yield scheduler.run(RoundRobinSchedule())

    def test_partial_enumeration_error_is_pinned(self):
        """A genuinely partial protocol run (one schedule only) produces a
        deterministic, actionable ExtractionError naming a missing view."""
        task = participating_set_task(2)

        def decide(pid, view):
            return frozenset(q for q, _state in view)

        messages = []
        for _attempt in range(2):
            with pytest.raises(
                ExtractionError, match=r"views of SDS\^1\(I\) were never realized"
            ) as excinfo:
                extract_decision_map(
                    fi_protocol_factories(decide),
                    task,
                    rounds=1,
                    runner=self._single_schedule_runner,
                )
            messages.append(str(excinfo.value))
        # Stable across runs: same count, same example vertex (min by
        # sort_key), so the message can be grepped for in CI logs.
        assert messages[0] == messages[1]
        assert "e.g. " in messages[0]
        assert "enumeration incomplete" in messages[0]


class TestModelRestrictedExtraction:
    def test_model_parameter_scopes_the_contract(self):
        """Under t_resilient(0) the synthesized consensus protocol decides a
        sentinel on out-of-contract views; extraction with model= ignores
        those pairs and validates against the restricted subdivision, while
        extraction without model= rejects the very same protocol."""
        from repro.core.protocol_synthesis import SynthesizedProtocol
        from repro.core.solvability import solve_task
        from repro.models import parse_model
        from repro.tasks import consensus_task

        model = parse_model("t_resilient(0)")
        task = consensus_task(2)
        result = solve_task(task, max_rounds=1, model=model)

        def for_inputs(inputs):
            protocol = SynthesizedProtocol(
                result,
                "iis",
                n_processes=2,
                expose_views=True,
                on_missing_view="sentinel",
            )
            return protocol.factories(inputs)

        mapping, domain = extract_decision_map(
            for_inputs, task, rounds=1, model=model
        )
        assert mapping.as_dict() == result.decision_map.as_dict()
        # Totality was judged against the restricted domain, which is
        # strictly smaller than the unrestricted SDS^1(I).
        from repro.topology.standard_chromatic import (
            iterated_standard_chromatic_subdivision,
        )

        full = iterated_standard_chromatic_subdivision(task.input_complex, 1)
        assert len(domain.complex.vertices) < len(full.complex.vertices)

        # The same protocol fails extraction without the model: sentinel
        # decisions on sequential views are outside the output complex.
        with pytest.raises(ValueError):
            extract_decision_map(for_inputs, task, rounds=1)


class TestAgainstSynthesis:
    def test_extraction_of_a_synthesized_protocol_roundtrips(self):
        """synthesize(solve(T)) then extract gives back a valid map for T."""
        from repro.core.protocol_synthesis import synthesize_iis_protocol
        from repro.core.solvability import solve_task

        task = approximate_agreement_task(2, 3)
        result = solve_task(task, max_rounds=1)
        synthesized = synthesize_iis_protocol(result)
        decisions = {
            vertex: image.payload
            for vertex, image in result.decision_map.as_dict().items()
        }

        def for_inputs(inputs):
            def factory_for(pid, value):
                def factory(p):
                    def protocol():
                        view = yield from iis_full_information(p, value, 1)
                        from repro.core.protocol_complex import (
                            runtime_view_to_vertex,
                        )

                        vertex = runtime_view_to_vertex(p, view, 1)
                        yield Decide((view, decisions[vertex]))

                    return protocol()

                return factory

            return {pid: factory_for(pid, value) for pid, value in inputs.items()}

        mapping, _sub = extract_decision_map(for_inputs, task, rounds=1)
        assert mapping.as_dict() == result.decision_map.as_dict()

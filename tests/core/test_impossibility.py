"""E5/E6: all-rounds impossibility certificates."""

import pytest

from repro.core.impossibility import (
    connectivity_certificate,
    sperner_certificate,
    try_all_impossibility_proofs,
)
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    constant_task,
    identity_task,
    set_consensus_task,
)


class TestConnectivity:
    def test_applies_to_binary_consensus(self):
        cert = connectivity_certificate(binary_consensus_task(2))
        assert cert is not None
        assert cert.kind == "connectivity"
        assert "connected" in cert.explanation

    def test_applies_to_three_process_consensus(self):
        assert connectivity_certificate(binary_consensus_task(3)) is not None

    def test_applies_to_multivalued_consensus(self):
        from repro.tasks import consensus_task

        assert connectivity_certificate(consensus_task(2, (0, 1, 2))) is not None

    def test_does_not_apply_to_identity(self):
        assert connectivity_certificate(identity_task(2)) is None

    def test_does_not_apply_to_constant(self):
        assert connectivity_certificate(constant_task(2)) is None

    def test_does_not_apply_to_approximate_agreement(self):
        assert connectivity_certificate(approximate_agreement_task(2, 3)) is None

    def test_does_not_apply_to_set_consensus(self):
        # Set consensus has a connected output complex: the connectivity
        # argument is silent; Sperner is needed.
        assert connectivity_certificate(set_consensus_task(3, 2)) is None


class TestSperner:
    @pytest.mark.parametrize("n,k", [(2, 1), (3, 2), (3, 1), (4, 3)])
    def test_applies_to_hard_set_consensus(self, n, k):
        cert = sperner_certificate(set_consensus_task(n, k))
        assert cert is not None
        assert cert.kind == "sperner"
        assert "Sperner" in cert.explanation

    def test_does_not_apply_to_trivial_set_consensus(self):
        assert sperner_certificate(set_consensus_task(3, 3)) is None

    def test_does_not_apply_to_identity(self):
        assert sperner_certificate(identity_task(2)) is None

    def test_does_not_apply_to_approximate_agreement(self):
        # Outputs are grid values, not participant inputs: validity
        # precondition fails.
        assert sperner_certificate(approximate_agreement_task(2, 3)) is None


class TestDispatch:
    def test_consensus_gets_connectivity(self):
        cert = try_all_impossibility_proofs(binary_consensus_task(2))
        assert cert is not None and cert.kind == "connectivity"

    def test_set_consensus_gets_sperner(self):
        cert = try_all_impossibility_proofs(set_consensus_task(3, 2))
        assert cert is not None and cert.kind == "sperner"

    def test_solvable_tasks_get_nothing(self):
        for task in (
            identity_task(2),
            constant_task(2),
            approximate_agreement_task(2, 3),
            set_consensus_task(3, 3),
        ):
            assert try_all_impossibility_proofs(task) is None, task.name

    def test_facts_recorded(self):
        cert = try_all_impossibility_proofs(set_consensus_task(3, 2))
        assert any("Sperner" in fact for fact in cert.checked_facts)


class TestConnectivityPremise:
    """The certificate's cited fact: SDS^b preserves connectedness."""

    @pytest.mark.parametrize("b", [0, 1, 2])
    def test_sds_of_consensus_inputs_connected(self, b):
        from repro.topology.standard_chromatic import (
            iterated_standard_chromatic_subdivision,
        )

        task = binary_consensus_task(2)
        assert task.input_complex.is_connected()
        sds = iterated_standard_chromatic_subdivision(task.input_complex, b)
        assert sds.complex.is_connected()

    @pytest.mark.parametrize("b", [0, 1])
    def test_sds_of_three_process_inputs_connected(self, b):
        from repro.topology.standard_chromatic import (
            iterated_standard_chromatic_subdivision,
        )

        task = binary_consensus_task(3)
        sds = iterated_standard_chromatic_subdivision(task.input_complex, b)
        assert sds.complex.is_connected()


class TestCertificatesAgreeWithSearch:
    """Certificates must never contradict the exhaustive per-level search."""

    def test_consensus(self):
        from repro.core.solvability import SolvabilityStatus, solve_task

        cert = try_all_impossibility_proofs(binary_consensus_task(2))
        search = solve_task(binary_consensus_task(2), max_rounds=2)
        assert cert is not None
        assert search.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND

    def test_set_consensus(self):
        from repro.core.solvability import SolvabilityStatus, solve_task

        cert = try_all_impossibility_proofs(set_consensus_task(3, 2))
        search = solve_task(set_consensus_task(3, 2), max_rounds=1)
        assert cert is not None
        assert search.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND

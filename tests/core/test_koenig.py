"""E4: Lemma 3.1 — König bound extraction from execution trees."""

import pytest

from repro.core.koenig import koenig_bound
from repro.core.protocol_synthesis import synthesize_iis_protocol
from repro.core.solvability import solve_task
from repro.runtime.ops import Decide, SnapshotRegion, WriteCell
from repro.runtime.scheduler import SchedulerError
from repro.tasks import approximate_agreement_task, identity_task


class TestBounds:
    def test_one_shot_protocol_bound(self):
        def one_op(pid):
            def protocol():
                yield WriteCell("r", pid)
                yield Decide(pid)

            return protocol()

        bound = koenig_bound([one_op, one_op], 2)
        assert bound.bound == 1  # one scheduler interaction per process
        assert bound.executions > 0

    def test_synthesized_protocol_bound_equals_rounds(self):
        result = solve_task(approximate_agreement_task(2, 3), max_rounds=2)
        protocol = synthesize_iis_protocol(result)
        bound = koenig_bound(protocol.factories({0: 0, 1: 3}), 2)
        # Each process takes exactly `rounds` WriteReadIS steps.
        assert bound.bound == result.rounds

    def test_round_zero_protocol(self):
        result = solve_task(identity_task(2), max_rounds=0)
        protocol = synthesize_iis_protocol(result)
        bound = koenig_bound(protocol.factories({0: 0, 1: 1}), 2)
        assert bound.bound == 0
        assert bound.executions == 1  # nothing to interleave

    def test_bound_with_crashes(self):
        def two_ops(pid):
            def protocol():
                yield WriteCell("r", pid)
                snap = yield SnapshotRegion("r")
                yield Decide(snap)

            return protocol()

        bound = koenig_bound([two_ops, two_ops], 2, max_crashes=1)
        assert bound.bound == 2

    def test_unbounded_protocol_detected(self):
        """A protocol that is not wait-free blows the depth guard —
        Lemma 3.1's contrapositive."""

        def racer(pid):
            def protocol():
                while True:  # never decides
                    yield WriteCell("r", pid)

            return protocol()

        with pytest.raises(SchedulerError):
            koenig_bound([racer], 1, max_depth=25)

    def test_emulation_bound_small_instance(self):
        """The k-shot emulation is bounded (Lemma 3.1 applies): for n=2,
        k=1, no execution lets a process take more than a handful of
        one-shot memories."""
        from repro.core.emulation import EmulationHarness
        from repro.runtime.scheduler import Scheduler

        inputs = {0: "a", 1: "b"}

        def factories():
            harness = EmulationHarness(inputs, 1)
            return {
                pid: (lambda p, v=v, h=harness: h._protocol(p, v))
                for pid, v in inputs.items()
            }

        # fresh harness per enumeration run: drive manually
        def factory_map(pid):
            raise AssertionError("unused")

        stack = [()]
        worst = 0
        executions = 0
        while stack:
            prefix = stack.pop()
            harness = EmulationHarness(inputs, 1)
            scheduler = Scheduler(
                {
                    pid: (lambda p, v=v, h=harness: h._protocol(p, v))
                    for pid, v in inputs.items()
                },
                2,
                record_events=True,
            )
            harness._clock = lambda: scheduler.time
            for action in prefix:
                scheduler.apply(action)
            if scheduler.all_done():
                executions += 1
                per_process = {}
                for event in scheduler.result().events:
                    for pid in getattr(event.action, "pids", None) or (
                        event.action.pid,
                    ):
                        per_process[pid] = per_process.get(pid, 0) + 1
                worst = max(worst, max(per_process.values()))
                continue
            assert len(prefix) < 40, "emulation execution unexpectedly deep"
            for action in reversed(scheduler.enabled_actions()):
                stack.append(prefix + (action,))
        assert executions > 0
        # Each process: 1 write + 1 snapshot, each consuming at most a few
        # memories under contention from one other process.
        assert worst <= 8

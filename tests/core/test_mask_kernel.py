"""Unit contracts of the array kernel's building blocks.

The end-to-end equivalence with the int kernel lives in
``test_sharded_kernel.py``; this file pins the pieces in isolation — the
packed-key row dedup against ``np.unique(axis=0)``, the vectorized census
against the Python census, the whole-array AC-3 sweep against the worklist
AC-3 fixpoint, and the 64-bit word limits that trigger the int fallback.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.csp_kernel import _ac3_bits, compile_level_packed
from repro.core.mask_kernel import (
    UnsupportedByArrayKernel,
    _ac3_arrays,
    _group_columns,
    _sorted_unique_rows,
    census_arrays,
    compile_arrays,
)
from repro.tasks import identity_task, set_consensus_task
from repro.topology.collapse import core_census, full_census, iter_tops_with_masks
from repro.topology.compact import CompactComplex
from repro.topology.shards import build_sds_sharded, ensure_sharded

SIMPLEX = lambda n: (tuple(range(n + 1)), (tuple(range(n + 1)),))  # noqa: E731


@pytest.fixture(scope="module", autouse=True)
def _isolated_sds_cache(tmp_path_factory):
    old = os.environ.get("REPRO_SDS_CACHE_DIR")
    os.environ["REPRO_SDS_CACHE_DIR"] = str(tmp_path_factory.mktemp("sds-cache"))
    yield
    if old is None:
        del os.environ["REPRO_SDS_CACHE_DIR"]
    else:
        os.environ["REPRO_SDS_CACHE_DIR"] = old


def _sharded_for(task, rounds):
    frozen = CompactComplex.freeze(task.input_complex)
    return ensure_sharded(tuple(frozen.colors), tuple(frozen.tops()), rounds)


class TestSortedUniqueRows:
    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_matches_python_sorted_set(self, rows):
        arr = np.array(rows, dtype=np.int32)
        got, _ = _sorted_unique_rows(arr)
        assert [tuple(r) for r in got.tolist()] == sorted(set(rows))

    def test_flag_aggregation_is_or_across_duplicates(self):
        rows = np.array([[1, 2], [3, 4], [1, 2], [3, 4], [5, 6]], dtype=np.int32)
        flags = np.array([False, True, True, False, False])
        uniq, agg = _sorted_unique_rows(rows, flags)
        assert [tuple(r) for r in uniq.tolist()] == [(1, 2), (3, 4), (5, 6)]
        assert agg.tolist() == [True, True, False]

    def test_wide_rows_take_the_lexsort_path(self):
        # 5 columns x 16 bits > 64: cannot pack, must still be exact.
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 40000, size=(200, 5)).astype(np.int32)
        rows = np.vstack([rows, rows[:50]])  # force duplicates
        flags = np.arange(len(rows)) % 2 == 0
        uniq, agg = _sorted_unique_rows(rows, flags)
        want = sorted(set(map(tuple, rows.tolist())))
        assert [tuple(r) for r in uniq.tolist()] == want
        assert len(agg) == len(uniq)

    def test_empty_input(self):
        empty = np.empty((0, 3), dtype=np.int32)
        uniq, agg = _sorted_unique_rows(empty, np.empty(0, dtype=bool))
        assert uniq.shape == (0, 3)
        assert agg.shape == (0,)


class TestGroupColumns:
    @settings(max_examples=50, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_groups_equal_rows(self, pairs):
        cols = [
            np.array([p[0] for p in pairs], dtype=np.int64),
            np.array([p[1] for p in pairs], dtype=np.int64),
        ]
        inverse, representatives = _group_columns(cols)
        # Same row -> same group; different row -> different group; the
        # representative really is a member of its group.
        for i, p in enumerate(pairs):
            for j, q in enumerate(pairs):
                assert (inverse[i] == inverse[j]) == (p == q)
        for group, rep in enumerate(representatives):
            assert inverse[rep] == group

    def test_wide_columns_fall_back_to_lexsort(self):
        rng = np.random.default_rng(3)
        cols = [rng.integers(0, 2**40, size=100) for _ in range(2)]
        cols = [np.concatenate([c, c[:30]]) for c in cols]
        inverse, representatives = _group_columns(cols)
        rows = list(zip(cols[0].tolist(), cols[1].tolist()))
        for i, p in enumerate(rows):
            for j, q in enumerate(rows):
                assert (inverse[i] == inverse[j]) == (p == q)
        assert len(representatives) == len(set(rows))


class TestCensusArrays:
    @pytest.mark.parametrize("n,b", [(1, 2), (2, 2), (3, 1), (3, 2)])
    @pytest.mark.parametrize("collapse", [True, False], ids=["core", "full"])
    def test_matches_python_census(self, n, b, collapse):
        sharded = build_sds_sharded(*SIMPLEX(n), b, shard_size=7)
        python_census = core_census if collapse else full_census
        want, want_report = python_census(
            iter_tops_with_masks(sharded), sharded.carrier_masks
        )
        got, got_report = census_arrays(
            sharded, sharded.carrier_masks, collapse=collapse
        )
        assert set(got) == set(want)
        for arity in want:
            assert [tuple(r) for r in got[arity].tolist()] == want[arity]
        assert got_report.kept_faces == want_report.kept_faces
        assert got_report.dropped_faces == want_report.dropped_faces

    def test_compact_source_equals_sharded_source(self):
        sharded = build_sds_sharded(*SIMPLEX(3), 1, shard_size=13)
        compact = sharded.to_compact()
        a, _ = census_arrays(sharded, sharded.carrier_masks)
        b, _ = census_arrays(compact, compact.carrier_masks)
        assert set(a) == set(b)
        for arity in a:
            assert a[arity].tolist() == b[arity].tolist()


class TestAC3Arrays:
    @pytest.mark.parametrize(
        "factory,b",
        [
            (lambda: identity_task(3), 1),
            (lambda: set_consensus_task(3, 2), 1),
            (lambda: set_consensus_task(3, 1), 1),
        ],
        ids=["identity", "2set", "consensus"],
    )
    def test_fixpoint_matches_worklist_ac3(self, factory, b):
        task = factory()
        sharded = _sharded_for(task, b)
        ci, _ = compile_level_packed(sharded, task, task.input_complex)
        ca, _ = compile_arrays(sharded, task, task.input_complex)
        int_domains = list(ci.domains)
        int_alive = _ac3_bits(ci, int_domains)
        array_domains = ca.domains.copy()
        array_alive = _ac3_arrays(ca, array_domains)
        assert int_alive == array_alive
        if int_alive:
            assert [int(d) for d in array_domains] == int_domains

    def test_emptied_domain_reports_false(self):
        task = set_consensus_task(4, 1)
        sharded = _sharded_for(task, 1)
        ci, _ = compile_level_packed(sharded, task, task.input_complex)
        ca, _ = compile_arrays(sharded, task, task.input_complex)
        int_domains = list(ci.domains)
        array_domains = ca.domains.copy()
        assert _ac3_bits(ci, int_domains) == _ac3_arrays(ca, array_domains)


class TestWordLimits:
    def test_wide_domains_unsupported(self):
        from repro.tasks import approximate_agreement_task

        task = approximate_agreement_task(2, 81)
        sharded = _sharded_for(task, 1)
        with pytest.raises(UnsupportedByArrayKernel):
            compile_arrays(sharded, task, task.input_complex)

    def test_supported_case_reports_infeasibility_like_int(self):
        task = set_consensus_task(4, 1)
        sharded = _sharded_for(task, 1)
        ci, _ = compile_level_packed(sharded, task, task.input_complex)
        ca, _ = compile_arrays(sharded, task, task.input_complex)
        assert ci.infeasible == ca.infeasible

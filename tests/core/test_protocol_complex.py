"""E1/E2: protocol complexes equal iterated standard chromatic subdivisions.

These are the executable forms of Lemma 3.2 and Lemma 3.3: the protocol
complex built from the *model* (ordered partitions), from the *runtime*
(exhaustive scheduler interleavings, both IS engines), and the combinatorial
``SDS^b`` must all coincide.
"""

import pytest

from repro.core.protocol_complex import (
    complex_from_runtime_views,
    iis_complex_from_runtime,
    iis_complex_operational,
    levels_is_complex_from_runtime,
    one_shot_is_complex,
    runtime_view_to_vertex,
    vertex_to_runtime_view,
)
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
    standard_chromatic_subdivision,
)
from repro.topology.vertex import Vertex


def input_complex(inputs):
    return SimplicialComplex(
        [Simplex(Vertex(pid, value) for pid, value in inputs.items())]
    )


class TestLemma32:
    """One-shot IS complex == SDS of the input simplex."""

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_model_side_equals_sds(self, n):
        inputs = {pid: f"v{pid}" for pid in range(n + 1)}
        model = one_shot_is_complex(inputs)
        sds = standard_chromatic_subdivision(input_complex(inputs))
        assert model == sds.complex

    @pytest.mark.parametrize("n", [1, 2])
    def test_oracle_runtime_equals_sds(self, n):
        inputs = {pid: f"v{pid}" for pid in range(n + 1)}
        runtime = iis_complex_from_runtime(inputs, 1)
        sds = standard_chromatic_subdivision(input_complex(inputs))
        assert runtime == sds.complex

    @pytest.mark.parametrize("n", [1, 2])
    def test_levels_runtime_equals_sds(self, n):
        """E10's forward direction: the register-based levels protocol
        generates exactly the standard chromatic subdivision."""
        inputs = {pid: f"v{pid}" for pid in range(n + 1)}
        runtime = levels_is_complex_from_runtime(inputs)
        sds = standard_chromatic_subdivision(input_complex(inputs))
        assert runtime == sds.complex

    def test_vertex_counts(self):
        inputs = {0: "a", 1: "b", 2: "c"}
        model = one_shot_is_complex(inputs)
        assert len(model.vertices) == 12
        assert len(model.maximal_simplices) == 13


class TestLemma33:
    """b-shot IIS complex == SDS^b."""

    @pytest.mark.parametrize("n,b", [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2)])
    def test_operational_equals_iterated_sds(self, n, b):
        inputs = {pid: f"v{pid}" for pid in range(n + 1)}
        operational = iis_complex_operational(inputs, b)
        sds = iterated_standard_chromatic_subdivision(input_complex(inputs), b)
        assert operational == sds.complex

    @pytest.mark.parametrize("b", [1, 2])
    def test_runtime_enumeration_equals_iterated_sds_two_processes(self, b):
        inputs = {0: "a", 1: "b"}
        runtime = iis_complex_from_runtime(inputs, b)
        sds = iterated_standard_chromatic_subdivision(input_complex(inputs), b)
        assert runtime == sds.complex

    def test_rounds_zero(self):
        inputs = {0: "a", 1: "b"}
        assert iis_complex_operational(inputs, 0) == input_complex(inputs)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            iis_complex_operational({0: "a"}, -1)


class TestSnapshotVsImmediate:
    """§3.4: immediate snapshot is a *strict* restriction of snapshots."""

    def test_is_complex_included_in_snapshot_complex(self):
        from repro.core.protocol_complex import one_round_snapshot_complex

        inputs = {0: "a", 1: "b", 2: "c"}
        snapshot_complex = one_round_snapshot_complex(inputs)
        is_complex = one_shot_is_complex(inputs)
        for top in is_complex.maximal_simplices:
            assert top in snapshot_complex

    def test_restriction_is_strict_for_three_processes(self):
        from repro.core.protocol_complex import one_round_snapshot_complex

        inputs = {0: "a", 1: "b", 2: "c"}
        snapshot_complex = one_round_snapshot_complex(inputs)
        is_complex = one_shot_is_complex(inputs)
        assert len(snapshot_complex.maximal_simplices) == 19
        assert len(is_complex.maximal_simplices) == 13
        assert snapshot_complex.vertices == is_complex.vertices

    def test_only_is_executions_give_a_pseudomanifold(self):
        """The manifold structure [5, 7] rely on comes from the IS
        restriction — the raw snapshot complex does not have it."""
        from repro.core.protocol_complex import one_round_snapshot_complex

        inputs = {0: "a", 1: "b", 2: "c"}
        assert not one_round_snapshot_complex(inputs).is_pseudomanifold()
        assert one_shot_is_complex(inputs).is_pseudomanifold()

    def test_two_processes_models_coincide(self):
        """For two processes one round of either model gives the same
        three outcomes — the gap opens at three processes."""
        from repro.core.protocol_complex import one_round_snapshot_complex

        inputs = {0: "a", 1: "b"}
        assert one_round_snapshot_complex(inputs) == one_shot_is_complex(inputs)


class TestBridge:
    """runtime view ↔ SDS vertex conversion is a bijection."""

    def test_round_zero(self):
        v = runtime_view_to_vertex(0, "input", 0)
        assert v == Vertex(0, "input")
        assert vertex_to_runtime_view(v, 0) == (0, "input")

    def test_round_one(self):
        state = frozenset({(0, "a"), (1, "b")})
        v = runtime_view_to_vertex(0, state, 1)
        assert v == Vertex(0, frozenset({Vertex(0, "a"), Vertex(1, "b")}))
        assert vertex_to_runtime_view(v, 1) == (0, state)

    def test_roundtrip_depth_two(self):
        inner = frozenset({(1, "b")})
        state = frozenset({(0, inner), (1, inner)})
        v = runtime_view_to_vertex(0, state, 2)
        assert vertex_to_runtime_view(v, 2) == (0, state)

    def test_bad_depth_raises(self):
        with pytest.raises(ValueError):
            runtime_view_to_vertex(0, "not-a-view", 1)
        with pytest.raises(ValueError):
            vertex_to_runtime_view(Vertex(0, "plain"), 1)

    def test_all_sds_vertices_roundtrip(self):
        inputs = {0: "a", 1: "b"}
        sds = iterated_standard_chromatic_subdivision(input_complex(inputs), 2)
        for vertex in sds.complex.vertices:
            pid, state = vertex_to_runtime_view(vertex, 2)
            assert runtime_view_to_vertex(pid, state, 2) == vertex

    def test_complex_from_runtime_views(self):
        views = [
            {0: frozenset({(0, "a")}), 1: frozenset({(0, "a"), (1, "b")})},
        ]
        complex_ = complex_from_runtime_views(views, 1)
        assert len(complex_.maximal_simplices) == 1

    def test_different_encodings_isomorphic(self):
        """IS complexes over different input encodings are isomorphic
        (color-preserving), though not equal — the structural invariance
        that lets Lemma 3.2 speak about 'the' subdivision."""
        from repro.topology.isomorphism import are_isomorphic

        a = one_shot_is_complex({0: "x", 1: "y", 2: "z"})
        b = one_shot_is_complex({0: 10, 1: 20, 2: 30})
        assert a != b
        assert are_isomorphic(a, b)

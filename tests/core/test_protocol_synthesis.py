"""Decision maps compiled to runnable protocols — and validated by running.

Closes the Prop 3.1 loop: the map found by the solver is executed in the
IIS model (oracle blocks) and in the atomic-snapshot model (levels
algorithm), under round-robin, random, crashy, and *all* schedules for
small instances; every produced output tuple must satisfy Δ.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.protocol_synthesis import (
    synthesize_iis_protocol,
    synthesize_snapshot_protocol,
)
from repro.core.solvability import solve_task
from repro.runtime.scheduler import RandomSchedule, enumerate_executions
from repro.tasks import (
    approximate_agreement_task,
    identity_task,
    set_consensus_task,
)


@pytest.fixture(scope="module")
def approx_result():
    return solve_task(approximate_agreement_task(2, 3), max_rounds=2)


@pytest.fixture(scope="module")
def approx_task():
    return approximate_agreement_task(2, 3)


class TestIISBackend:
    def test_round_robin(self, approx_result, approx_task):
        protocol = synthesize_iis_protocol(approx_result)
        decisions = protocol.run_and_validate(approx_task, {0: 0, 1: 3})
        assert set(decisions) == {0, 1}

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_schedules(self, approx_result, approx_task, seed):
        protocol = synthesize_iis_protocol(approx_result)
        protocol.run_and_validate(approx_task, {0: 0, 1: 3}, RandomSchedule(seed))

    @pytest.mark.parametrize("inputs", [{0: 0, 1: 0}, {0: 3, 1: 3}, {0: 3, 1: 0}])
    def test_all_input_tuples(self, approx_result, approx_task, inputs):
        protocol = synthesize_iis_protocol(approx_result)
        protocol.run_and_validate(approx_task, inputs)

    def test_every_interleaving(self, approx_result, approx_task):
        """Exhaustive: all IIS schedules of the synthesized protocol."""
        protocol = synthesize_iis_protocol(approx_result)
        inputs = {0: 0, 1: 3}
        count = 0
        for result in enumerate_executions(protocol.factories(inputs), 2):
            count += 1
            assert approx_task.validate_outputs(inputs, result.decisions)
        assert count > 1

    def test_every_interleaving_with_crashes(self, approx_result, approx_task):
        protocol = synthesize_iis_protocol(approx_result)
        inputs = {0: 0, 1: 3}
        for result in enumerate_executions(
            protocol.factories(inputs), 2, max_crashes=1
        ):
            # Survivors still decide and their partial tuple is allowed.
            assert approx_task.validate_outputs(inputs, result.decisions)
            assert len(result.decisions) + len(result.crashed) == 2

    def test_identity_runs_at_round_zero(self):
        result = solve_task(identity_task(2), max_rounds=0)
        protocol = synthesize_iis_protocol(result)
        decisions = protocol.run_and_validate(identity_task(2), {0: 1, 1: 0})
        assert decisions == {0: 1, 1: 0}

    def test_trivial_set_consensus(self):
        task = set_consensus_task(3, 3)
        result = solve_task(task, max_rounds=0)
        protocol = synthesize_iis_protocol(result)
        decisions = protocol.run_and_validate(task, {0: 0, 1: 1, 2: 2})
        assert len(set(decisions.values())) <= 3

    def test_three_process_protocol(self):
        """The 2-dimensional instance end to end: solve, compile, run."""
        task = approximate_agreement_task(3, 2)
        result = solve_task(task, max_rounds=1)
        protocol = synthesize_iis_protocol(result)
        for seed in range(20):
            decisions = protocol.run_and_validate(
                task, {0: 0, 1: 2, 2: 2}, RandomSchedule(seed)
            )
            values = list(decisions.values())
            assert max(values) - min(values) <= 1

    def test_unsolved_result_rejected(self):
        from repro.core.solvability import solve_task as solve

        unsat = solve(set_consensus_task(3, 2), max_rounds=0)
        with pytest.raises(ValueError):
            synthesize_iis_protocol(unsat)


class TestLevelsBackend:
    """The same map over SWMR registers: the Section 3.4 direction."""

    def test_round_robin(self, approx_result, approx_task):
        protocol = synthesize_snapshot_protocol(approx_result, 2)
        protocol.run_and_validate(approx_task, {0: 0, 1: 3})

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_schedules(self, approx_result, approx_task, seed):
        protocol = synthesize_snapshot_protocol(approx_result, 2)
        protocol.run_and_validate(approx_task, {0: 0, 1: 3}, RandomSchedule(seed))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_crashes(self, approx_result, approx_task, seed):
        protocol = synthesize_snapshot_protocol(approx_result, 2)
        decisions = protocol.run(
            {0: 0, 1: 3}, RandomSchedule(seed, crash_pids=[1])
        )
        assert approx_task.validate_outputs({0: 0, 1: 3}, decisions)

    def test_both_backends_valid_under_round_robin(
        self, approx_result, approx_task
    ):
        # Round-robin induces *different* IS partitions in the two engines
        # (the levels algorithm interleaves register steps), so decisions
        # need not coincide — but both must satisfy Δ.
        iis = synthesize_iis_protocol(approx_result).run({0: 0, 1: 3})
        levels = synthesize_snapshot_protocol(approx_result, 2).run({0: 0, 1: 3})
        assert approx_task.validate_outputs({0: 0, 1: 3}, iis)
        assert approx_task.validate_outputs({0: 0, 1: 3}, levels)

"""The sharded, collapse-compressed kernel against the in-RAM oracle.

Three rings of evidence, strongest first:

* **Oracle differentials** — for every zoo task and round count, the
  sharded probe (both mask backends, collapse on) must return the same
  verdict *and the same first decision map* as ``compile_level`` on the
  full object-graph subdivision compiled with the packed vertex order.
  Variable order, value order and the search are deterministic, so map
  equality is exact, not up-to-isomorphism.

* **Backend equivalence** — the int and numpy backends share constraint
  census, constraint order, incidence order and search control flow, so
  they must agree on *every statistic* (nodes, conflicts, backjumps,
  nogoods), not just the answer.

* **Shard-size invariance** — Hypothesis drives random shard sizes through
  the same instance; the on-disk split is storage, never semantics.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.csp_kernel import compile_level, compile_level_packed, kernel_search
from repro.core.mask_kernel import (
    UnsupportedByArrayKernel,
    array_search,
    compile_arrays,
)
from repro.core.solvability import SearchOptions, probe_level_sharded
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    identity_task,
    set_consensus_task,
)
from repro.topology.compact import CompactComplex
from repro.topology.shards import ensure_sharded
from repro.topology.standard_chromatic import iterated_standard_chromatic_subdivision
from repro.topology.vertex import Vertex

# (task factory, rounds): SAT and UNSAT cases, conflict-heavy searches
# (set-consensus), and multi-valued inputs — all cheap enough for CI.
ZOO = [
    (lambda: identity_task(2), 1),
    (lambda: identity_task(3), 2),
    (lambda: identity_task(4), 1),
    (lambda: binary_consensus_task(2), 2),
    (lambda: binary_consensus_task(3), 1),
    (lambda: set_consensus_task(3, 2), 1),
    (lambda: set_consensus_task(3, 3), 1),
    (lambda: set_consensus_task(4, 1), 1),
    (lambda: approximate_agreement_task(2, 3), 2),
    (lambda: approximate_agreement_task(3, 2), 1),
]
ZOO_IDS = [f"case{i}" for i in range(len(ZOO))]


@pytest.fixture(scope="module", autouse=True)
def _isolated_sds_cache(tmp_path_factory):
    old = os.environ.get("REPRO_SDS_CACHE_DIR")
    os.environ["REPRO_SDS_CACHE_DIR"] = str(tmp_path_factory.mktemp("sds-cache"))
    yield
    if old is None:
        del os.environ["REPRO_SDS_CACHE_DIR"]
    else:
        os.environ["REPRO_SDS_CACHE_DIR"] = old


def _sharded_for(task, rounds, shard_size=7):
    frozen = CompactComplex.freeze(task.input_complex)
    return ensure_sharded(
        tuple(frozen.colors), tuple(frozen.tops()), rounds, shard_size=shard_size
    )


def _oracle(task, rounds, chain):
    subdivision = iterated_standard_chromatic_subdivision(task.input_complex, rounds)
    compiled = compile_level(subdivision, task, vertex_order=chain)
    return kernel_search(compiled, 10**7)


class TestOracleDifferentials:
    @pytest.mark.parametrize("case", range(len(ZOO)), ids=ZOO_IDS)
    def test_sharded_matches_full_oracle(self, case):
        factory, rounds = ZOO[case]
        task = factory()
        sharded = _sharded_for(task, rounds)
        chain = sharded.vertex_chain(
            sorted(task.input_complex.vertices, key=Vertex.sort_key)
        )
        oracle_map, oracle_stats = _oracle(task, rounds, chain)
        for backend in ("int", "numpy"):
            mapping, report, extras = probe_level_sharded(
                task,
                rounds,
                options=SearchOptions(mask_backend=backend),
                shard_size=7,
            )
            assert extras["backend"] == backend
            assert (mapping is None) == (oracle_map is None), backend
            if oracle_map is not None:
                assert mapping == oracle_map, backend

    @pytest.mark.parametrize("case", range(len(ZOO)), ids=ZOO_IDS)
    def test_collapse_off_matches_oracle_too(self, case):
        factory, rounds = ZOO[case]
        task = factory()
        sharded = _sharded_for(task, rounds)
        chain = sharded.vertex_chain(
            sorted(task.input_complex.vertices, key=Vertex.sort_key)
        )
        oracle_map, _ = _oracle(task, rounds, chain)
        mapping, _, extras = probe_level_sharded(
            task, rounds, options=SearchOptions(mask_backend="int"),
            shard_size=7, collapse=False,
        )
        assert (mapping is None) == (oracle_map is None)
        if oracle_map is not None:
            assert mapping == oracle_map
        assert extras["collapse"].dropped_faces == 0

    def test_collapse_off_face_count_matches_full_compile(self):
        # With collapse off, the packed compile must see exactly as many
        # constraints as the object-graph compile sees simplices of dim >= 1.
        task = identity_task(4)
        rounds = 1
        sharded = _sharded_for(task, rounds)
        chain = sharded.vertex_chain(
            sorted(task.input_complex.vertices, key=Vertex.sort_key)
        )
        compiled, report = compile_level_packed(
            sharded, task, task.input_complex, collapse=False, vertex_chain=chain
        )
        subdivision = iterated_standard_chromatic_subdivision(
            task.input_complex, rounds
        )
        oracle = compile_level(subdivision, task, vertex_order=chain)
        assert len(compiled.con_vars) == len(oracle.con_vars)
        assert sorted(map(sorted, compiled.con_vars)) == sorted(
            map(sorted, oracle.con_vars)
        )


class TestBackendEquivalence:
    @pytest.mark.parametrize("case", range(len(ZOO)), ids=ZOO_IDS)
    @pytest.mark.parametrize("collapse", [True, False], ids=["core", "full"])
    def test_full_stats_equality(self, case, collapse):
        factory, rounds = ZOO[case]
        task = factory()
        sharded = _sharded_for(task, rounds)
        base = task.input_complex
        ci, ri = compile_level_packed(sharded, task, base, collapse=collapse)
        ca, ra = compile_arrays(sharded, task, base, collapse=collapse)
        assert (ri.kept_faces, ri.dropped_faces) == (ra.kept_faces, ra.dropped_faces)
        assert ci.neighbors == ca.neighbors
        mi, si = kernel_search(ci, 10**7)
        ma, sa = array_search(ca, 10**7)
        assert (mi is None) == (ma is None)
        if mi is not None:
            assert mi == ma
        assert (si.nodes, si.conflicts, si.backjumps, si.nogoods, si.exhausted) == (
            sa.nodes, sa.conflicts, sa.backjumps, sa.nogoods, sa.exhausted,
        )

    @pytest.mark.parametrize(
        "flags",
        [
            {"arc_consistency": False},
            {"forward_checking": False},
            {"adjacency_order": False},
            {"arc_consistency": False, "forward_checking": False},
        ],
        ids=["no-ac", "no-fc", "no-adj", "no-ac-no-fc"],
    )
    def test_ablations_agree_too(self, flags):
        task = set_consensus_task(3, 2)
        sharded = _sharded_for(task, 1)
        ci, _ = compile_level_packed(sharded, task, task.input_complex)
        ca, _ = compile_arrays(sharded, task, task.input_complex)
        mi, si = kernel_search(ci, 10**7, **flags)
        ma, sa = array_search(ca, 10**7, **flags)
        assert (mi is None) == (ma is None)
        assert (si.nodes, si.conflicts, si.backjumps, si.nogoods) == (
            sa.nodes, sa.conflicts, sa.backjumps, sa.nogoods,
        )

    def test_node_budget_aborts_identically(self):
        task = set_consensus_task(3, 2)
        sharded = _sharded_for(task, 1)
        ci, _ = compile_level_packed(sharded, task, task.input_complex)
        ca, _ = compile_arrays(sharded, task, task.input_complex)
        mi, si = kernel_search(ci, 50)
        ma, sa = array_search(ca, 50)
        assert mi is None and ma is None
        assert si.exhausted is False and sa.exhausted is False
        assert si.nodes == sa.nodes


class TestShardSizeInvariance:
    @settings(max_examples=15, deadline=None)
    @given(shard_size=st.integers(min_value=1, max_value=500))
    def test_identity_verdict_and_map_invariant(self, shard_size):
        task = identity_task(3)
        mapping, report, extras = probe_level_sharded(
            task, 2, options=SearchOptions(mask_backend="int"), shard_size=shard_size
        )
        reference, ref_report, _ = probe_level_sharded(
            task, 2, options=SearchOptions(mask_backend="int"), shard_size=10**6
        )
        assert (mapping is None) == (reference is None)
        assert mapping == reference
        assert report.nodes_explored == ref_report.nodes_explored

    @settings(max_examples=10, deadline=None)
    @given(shard_size=st.integers(min_value=1, max_value=300))
    def test_unsat_stays_unsat(self, shard_size):
        mapping, report, _ = probe_level_sharded(
            binary_consensus_task(3),
            1,
            options=SearchOptions(mask_backend="int"),
            shard_size=shard_size,
        )
        assert mapping is None
        assert report.exhausted


class TestBackendDispatch:
    def test_auto_prefers_numpy(self):
        _, _, extras = probe_level_sharded(
            identity_task(2), 1, options=SearchOptions(mask_backend="auto")
        )
        assert extras["backend"] == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            probe_level_sharded(
                identity_task(2), 1, options=SearchOptions(mask_backend="rust")
            )

    def test_wide_candidate_domains_fall_back(self):
        # 81 candidate outputs per vertex exceed the 64-bit domain word:
        # numpy must refuse, auto must fall back to int.
        task = approximate_agreement_task(2, 81)
        sharded = _sharded_for(task, 1)
        with pytest.raises(UnsupportedByArrayKernel):
            compile_arrays(sharded, task, task.input_complex)
        mapping, _, extras = probe_level_sharded(
            task, 1, options=SearchOptions(mask_backend="auto")
        )
        assert extras["backend"] == "int"
        reference, _, _ = probe_level_sharded(
            task, 1, options=SearchOptions(mask_backend="int")
        )
        assert mapping == reference
        with pytest.raises(UnsupportedByArrayKernel):
            probe_level_sharded(
                task, 1, options=SearchOptions(mask_backend="numpy")
            )

"""E5: the characterization engine on the task zoo (Prop 3.1, Cor 5.2)."""

import pytest

from repro.core.solvability import (
    SearchOptions,
    SolvabilityStatus,
    solve_task,
    validate_decision_map,
)
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    constant_task,
    identity_task,
    set_consensus_task,
)
from repro.tasks.approximate_agreement import predicted_rounds


class TestSolvableTasks:
    def test_identity_at_round_zero(self):
        result = solve_task(identity_task(2), max_rounds=1)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 0

    def test_constant_at_round_zero(self):
        result = solve_task(constant_task(3), max_rounds=1)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 0

    def test_trivial_set_consensus(self):
        result = solve_task(set_consensus_task(3, 3), max_rounds=1)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 0

    @pytest.mark.parametrize("resolution", [2, 3, 5, 9, 27])
    def test_approximate_agreement_at_predicted_level(self, resolution):
        result = solve_task(
            approximate_agreement_task(2, resolution), max_rounds=4
        )
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == predicted_rounds(resolution)

    def test_three_process_approximate_agreement(self):
        """A genuinely 2-dimensional SAT instance: 3-process ε-agreement."""
        result = solve_task(approximate_agreement_task(3, 2), max_rounds=1)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 1

    def test_three_process_approximate_agreement_finer(self):
        result = solve_task(approximate_agreement_task(3, 3), max_rounds=2)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 2  # one SDS level shrinks the 2-D range less

    def test_decision_map_is_validated(self):
        result = solve_task(approximate_agreement_task(2, 3), max_rounds=2)
        validate_decision_map(
            result.subdivision, approximate_agreement_task(2, 3), result.decision_map
        )

    def test_min_rounds_skips_levels(self):
        result = solve_task(identity_task(2), max_rounds=2, min_rounds=1)
        assert result.rounds == 1  # identity also solvable at higher levels


class TestUnsolvableTasks:
    def test_consensus_unsat_levels(self):
        result = solve_task(binary_consensus_task(2), max_rounds=3)
        assert result.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND
        assert [level.satisfiable for level in result.levels] == [False] * 4
        assert all(level.exhausted for level in result.levels)

    def test_three_process_consensus_unsat(self):
        result = solve_task(binary_consensus_task(3), max_rounds=1)
        assert result.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND

    def test_set_consensus_unsat_level_one(self):
        result = solve_task(set_consensus_task(3, 2), max_rounds=1)
        assert result.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND
        assert all(level.exhausted for level in result.levels)

    def test_node_budget_produces_unknown(self):
        result = solve_task(
            set_consensus_task(3, 2), min_rounds=2, max_rounds=2, node_budget=1000
        )
        assert result.status is SolvabilityStatus.UNKNOWN
        assert not result.levels[-1].exhausted


class TestSearchOptions:
    """Every degraded configuration stays sound (slow, never wrong)."""

    @pytest.mark.parametrize(
        "options",
        [
            SearchOptions(False, True, True),
            SearchOptions(True, False, True),
            SearchOptions(True, True, False),
            SearchOptions(False, False, False),
        ],
        ids=["no-ac3", "no-fc", "no-adjacency", "plain"],
    )
    def test_same_verdicts_on_small_instances(self, options):
        for task, max_rounds, expect_solvable, expect_level in [
            (identity_task(2), 1, True, 0),
            (approximate_agreement_task(2, 3), 1, True, 1),
            (binary_consensus_task(2), 1, False, None),
        ]:
            result = solve_task(
                task, max_rounds, node_budget=500_000, options=options
            )
            if expect_solvable:
                assert result.status is SolvabilityStatus.SOLVABLE
                assert result.rounds == expect_level
            else:
                assert result.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND


class TestReports:
    def test_level_reports_complete(self):
        result = solve_task(approximate_agreement_task(2, 3), max_rounds=3)
        assert [level.rounds for level in result.levels] == [0, 1]
        assert result.levels[-1].satisfiable
        assert result.levels[-1].vertices > 0

    def test_repr(self):
        result = solve_task(identity_task(2), max_rounds=0)
        assert "solvable" in repr(result)


class TestParallelLevels:
    """The ``max_workers`` fan-out must be verdict-identical to the serial sweep."""

    def test_parallel_matches_serial_on_solvable(self):
        serial = solve_task(approximate_agreement_task(2, 3), max_rounds=2)
        parallel = solve_task(
            approximate_agreement_task(2, 3), max_rounds=2, max_workers=2
        )
        assert parallel.status is serial.status is SolvabilityStatus.SOLVABLE
        assert parallel.rounds == serial.rounds
        assert [l.rounds for l in parallel.levels] == [l.rounds for l in serial.levels]
        assert [l.nodes_explored for l in parallel.levels] == [
            l.nodes_explored for l in serial.levels
        ]

    def test_parallel_matches_serial_on_unsat(self):
        serial = solve_task(binary_consensus_task(2), max_rounds=2)
        parallel = solve_task(binary_consensus_task(2), max_rounds=2, max_workers=2)
        assert parallel.status is serial.status
        assert parallel.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND
        assert [l.satisfiable for l in parallel.levels] == [
            l.satisfiable for l in serial.levels
        ]

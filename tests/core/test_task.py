"""Task formalism tests."""

import pytest

from repro.core.task import Task, delta_from_rule
from repro.tasks import binary_consensus_task, set_consensus_task
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex, vertices_of


def simple_task():
    return binary_consensus_task(2)


class TestValidation:
    def test_consensus_builds(self):
        task = simple_task()
        assert task.n_processes == 2
        assert task.input_complex.dimension == 1

    def test_missing_delta_rejected(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(2)))
        with pytest.raises(ValueError, match="undefined or empty"):
            Task("bad", c, c, {})

    def test_color_mismatch_rejected(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(2)))
        bad_delta = delta_from_rule(
            c, lambda s: [Simplex([Vertex(0)])]  # wrong colors for edges
        )
        with pytest.raises(ValueError, match="colors"):
            Task("bad", c, c, bad_delta)

    def test_output_outside_complex_rejected(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(2)))
        rogue = Simplex([Vertex(0, "rogue"), Vertex(1, "rogue")])
        delta = {s: frozenset({s if s != c else s}) for s in c.simplices()}
        delta[Simplex(vertices_of(range(2)))] = frozenset({rogue})
        with pytest.raises(ValueError):
            Task("bad", c, c, delta)

    def test_non_chromatic_input_rejected(self):
        bad = SimplicialComplex([Simplex([Vertex(0, "a"), Vertex(0, "b")])])
        ok = SimplicialComplex.from_vertices(vertices_of(range(2)))
        with pytest.raises(ValueError, match="input"):
            Task("bad", bad, ok, {})


class TestQueries:
    def test_allows_full_tuple(self):
        task = simple_task()
        inputs = Simplex([Vertex(0, 0), Vertex(1, 1)])
        agree0 = Simplex([Vertex(0, 0), Vertex(1, 0)])
        disagree = Simplex([Vertex(0, 0), Vertex(1, 1)])
        assert task.allows(inputs, agree0)
        assert not task.allows(inputs, disagree)

    def test_allows_faces(self):
        task = simple_task()
        inputs = Simplex([Vertex(0, 0), Vertex(1, 1)])
        solo_piece = Simplex([Vertex(0, 1)])  # 0 decides 1: face of agree-1
        assert task.allows(inputs, solo_piece)

    def test_allows_unknown_input_raises(self):
        task = simple_task()
        with pytest.raises(KeyError):
            task.allows(Simplex([Vertex(0, "zzz")]), Simplex([Vertex(0, 0)]))

    def test_candidate_decisions_validity(self):
        task = simple_task()
        solo = Simplex([Vertex(0, 1)])
        candidates = task.candidate_decisions(solo, 0)
        assert candidates == [Vertex(0, 1)]  # solo must decide own input

    def test_candidate_decisions_mixed(self):
        task = simple_task()
        edge = Simplex([Vertex(0, 0), Vertex(1, 1)])
        assert len(task.candidate_decisions(edge, 0)) == 2

    def test_validate_outputs_accepts_partial(self):
        task = simple_task()
        assert task.validate_outputs({0: 0, 1: 1}, {0: 0})
        assert task.validate_outputs({0: 0, 1: 1}, {})

    def test_validate_outputs_rejects_disagreement(self):
        task = simple_task()
        assert not task.validate_outputs({0: 0, 1: 1}, {0: 0, 1: 1})

    def test_validate_outputs_rejects_invalid_value(self):
        task = simple_task()
        assert not task.validate_outputs({0: 0, 1: 0}, {0: 1})

    def test_validate_outputs_unknown_inputs_raise(self):
        task = simple_task()
        with pytest.raises(ValueError):
            task.validate_outputs({0: "junk"}, {})


class TestRestriction:
    def test_restrict_consensus_to_one_process(self):
        task = binary_consensus_task(2).restrict_to_participants([0])
        assert task.n_processes == 1
        assert task.input_complex.colors == frozenset({0})
        # Solo consensus: decide own input.
        solo = Simplex([Vertex(0, 1)])
        assert task.candidate_decisions(solo, 0) == [Vertex(0, 1)]

    def test_restrict_set_consensus(self):
        task = set_consensus_task(3, 2).restrict_to_participants([0, 2])
        assert task.input_complex.colors == frozenset({0, 2})
        pair = Simplex([Vertex(0, 0), Vertex(2, 2)])
        for tuple_ in task.allowed_outputs(pair):
            assert {v.payload for v in tuple_} <= {0, 2}

    def test_unknown_colors_rejected(self):
        with pytest.raises(ValueError):
            binary_consensus_task(2).restrict_to_participants([7])

    def test_solvability_inherited_downward(self):
        """A solvable task's restriction is solvable (at most same level)."""
        from repro.core.solvability import SolvabilityStatus, solve_task
        from repro.tasks import approximate_agreement_task

        full = approximate_agreement_task(3, 2)
        full_result = solve_task(full, max_rounds=1)
        assert full_result.status is SolvabilityStatus.SOLVABLE
        restricted = full.restrict_to_participants([0, 1])
        result = solve_task(restricted, max_rounds=full_result.rounds)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds <= full_result.rounds

    def test_unsolvable_can_become_solvable_when_restricted(self):
        """The converse direction fails, as it must: consensus is trivial
        for one process."""
        from repro.core.solvability import SolvabilityStatus, solve_task

        solo = binary_consensus_task(2).restrict_to_participants([1])
        result = solve_task(solo, max_rounds=0)
        assert result.status is SolvabilityStatus.SOLVABLE


class TestSetConsensusDelta:
    def test_solo_decides_self(self):
        task = set_consensus_task(3, 2)
        solo = Simplex([Vertex(1, 1)])
        assert task.candidate_decisions(solo, 1) == [Vertex(1, 1)]

    def test_full_tuple_distinct_bound(self):
        task = set_consensus_task(3, 2)
        top = Simplex([Vertex(0, 0), Vertex(1, 1), Vertex(2, 2)])
        for tuple_ in task.allowed_outputs(top):
            assert len({v.payload for v in tuple_}) <= 2

    def test_k_bounds_validated(self):
        with pytest.raises(ValueError):
            set_consensus_task(3, 0)
        with pytest.raises(ValueError):
            set_consensus_task(3, 4)

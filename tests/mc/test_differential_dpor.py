"""Differential suite: DPOR-reduced exploration vs. the naive oracles.

Two independent references keep the reductions honest under *randomized*
fault injection (budgets drawn by :mod:`tests.strategies`):

* the explorer's own unreduced walk (``reduction=False, state_cache=False``),
  which shares the replay machinery but none of the pruning; and
* :func:`repro.runtime.scheduler.enumerate_executions`, a separate
  implementation that predates the explorer entirely.

Sound reductions may only collapse *interleavings*, never outcomes, so the
outcome sets must match exactly.  Derandomized under the ``ci`` Hypothesis
profile, so a CI failure replays locally with the same budgets.
"""

from hypothesis import given, settings, strategies as st

from repro.mc.explorer import CrashBudget, ExploreOptions, explore
from repro.mc.scenario import EmulationScenario, IISScenario
from repro.runtime.iterated import iis_full_information
from repro.runtime.ops import Decide
from repro.runtime.scheduler import enumerate_executions
from tests.strategies import crash_budgets


def _naive_options(budget: CrashBudget) -> ExploreOptions:
    return ExploreOptions(
        reduction=False,
        state_cache=False,
        crash_budget=budget,
        stop_on_violation=False,
    )


def _iis_factories(processes: int, rounds: int):
    def factory_for(pid):
        def factory(p):
            def protocol():
                view = yield from iis_full_information(p, f"v{p}", rounds)
                yield Decide(view)

            return protocol()

        return factory

    return {pid: factory_for(pid) for pid in range(processes)}


class TestReducedVsNaiveWalk:
    @given(crash_budgets(processes=2))
    @settings(max_examples=10, deadline=None)
    def test_emulation_outcome_sets_agree(self, budget):
        scenario = EmulationScenario(processes=2, k=1)
        reduced = explore(
            scenario,
            ExploreOptions(crash_budget=budget, stop_on_violation=False),
        )
        naive = explore(scenario, _naive_options(budget))
        assert reduced.ok and naive.ok
        assert reduced.outcomes == naive.outcomes
        assert reduced.stats.executions <= naive.stats.executions

    def test_emulation_two_round_outcome_sets_agree(self):
        # k=2 multiplies the naive schedule count ~50x, so this depth is a
        # single crash-free case rather than a Hypothesis dimension.
        scenario = EmulationScenario(processes=2, k=2)
        options = ExploreOptions(stop_on_violation=False)
        reduced = explore(scenario, options)
        naive = explore(scenario, _naive_options(options.crash_budget))
        assert reduced.outcomes == naive.outcomes
        assert reduced.stats.executions < naive.stats.executions

    @given(crash_budgets(processes=3))
    @settings(max_examples=6, deadline=None)
    def test_iis_outcome_sets_agree(self, budget):
        scenario = IISScenario(processes=3, rounds=1)
        reduced = explore(
            scenario,
            ExploreOptions(crash_budget=budget, stop_on_violation=False),
        )
        naive = explore(scenario, _naive_options(budget))
        assert reduced.ok and naive.ok
        assert reduced.outcomes == naive.outcomes


class TestReducedVsEnumerateExecutions:
    @given(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=6, deadline=None)
    def test_iis_outcomes_match_reference_enumeration(self, max_crashes, rounds):
        scenario = IISScenario(processes=2, rounds=rounds)
        reduced = explore(
            scenario,
            ExploreOptions(
                crash_budget=CrashBudget(max_crashes=max_crashes),
                stop_on_violation=False,
            ),
        )
        reference = {
            (tuple(sorted(run.decisions.items())), run.crashed)
            for run in enumerate_executions(
                _iis_factories(2, rounds), 2, max_crashes=max_crashes
            )
        }
        assert reduced.outcomes == reference

"""Explorer soundness: reduced walks cover exactly the naive outcome space."""

import pytest

from repro.mc import (
    CrashBudget,
    EmulationScenario,
    ExploreOptions,
    IISScenario,
    explore,
    independent,
)
from repro.runtime.iterated import iis_full_information
from repro.runtime.ops import Decide, SnapshotRegion, WriteCell
from repro.runtime.scheduler import (
    BlockAction,
    CrashAction,
    SchedulerError,
    StepAction,
    enumerate_executions,
)

NAIVE = ExploreOptions(reduction=False, state_cache=False)


class TestOutcomeAgreement:
    def test_emulation_reduced_matches_naive(self):
        scenario = EmulationScenario(processes=2, k=1)
        reduced = explore(scenario)
        naive = explore(scenario, NAIVE)
        assert reduced.ok and naive.ok
        assert reduced.outcomes == naive.outcomes
        assert reduced.stats.executions < naive.stats.executions

    def test_iis_both_modes_count_fubini(self):
        # 13 = Fubini(3) ordered partitions = top simplices of SDS(s^2):
        # the schedule space of one IS round *is* the subdivision (Lemma 3.2).
        scenario = IISScenario(processes=3, rounds=1)
        reduced = explore(scenario)
        naive = explore(scenario, NAIVE)
        assert reduced.stats.executions == naive.stats.executions == 13
        assert reduced.outcomes == naive.outcomes
        assert len(reduced.outcomes) == 13

    def test_naive_walk_matches_enumerate_executions(self):
        def factory(pid):
            def protocol():
                view = yield from iis_full_information(pid, f"v{pid}", 1)
                yield Decide(view)

            return protocol()

        reference = list(enumerate_executions([factory, factory, factory], 3))
        naive = explore(IISScenario(processes=3, rounds=1), NAIVE)
        assert naive.stats.executions == len(reference)
        reference_outcomes = {
            (tuple(sorted(r.decisions.items())), r.crashed) for r in reference
        }
        assert naive.outcomes == reference_outcomes

    def test_state_cache_alone_preserves_outcomes(self):
        scenario = IISScenario(processes=2, rounds=2)
        cached = explore(scenario, ExploreOptions(reduction=False, state_cache=True))
        naive = explore(scenario, NAIVE)
        assert cached.outcomes == naive.outcomes
        assert cached.stats.cache_hits > 0
        assert cached.stats.executions < naive.stats.executions


class TestCrashInjection:
    def test_crash_budget_agreement_with_naive(self):
        scenario = EmulationScenario(processes=2, k=1)
        budget = CrashBudget(max_crashes=1)
        reduced = explore(scenario, ExploreOptions(crash_budget=budget))
        naive = explore(
            scenario,
            ExploreOptions(reduction=False, state_cache=False, crash_budget=budget),
        )
        assert reduced.outcomes == naive.outcomes
        # The emulation is wait-free and stays legal under every crash pattern.
        assert reduced.ok and naive.ok
        assert any(crashed for _decisions, crashed in reduced.outcomes)

    def test_zero_budget_never_crashes(self):
        report = explore(EmulationScenario(processes=2, k=1))
        assert all(not crashed for _decisions, crashed in report.outcomes)

    def test_crash_pids_restricts_victims(self):
        options = ExploreOptions(crash_budget=CrashBudget(max_crashes=1, pids=(0,)))
        report = explore(EmulationScenario(processes=2, k=1), options)
        crashed_pids = set()
        for _decisions, crashed in report.outcomes:
            crashed_pids |= crashed
        assert crashed_pids == {0}

    def test_budget_caps_crash_count(self):
        options = ExploreOptions(crash_budget=CrashBudget(max_crashes=1))
        report = explore(EmulationScenario(processes=2, k=1), options)
        assert max(len(crashed) for _d, crashed in report.outcomes) == 1


class TestGuards:
    def test_max_depth_guard(self):
        with pytest.raises(SchedulerError, match="max_depth"):
            explore(IISScenario(processes=3, rounds=1), ExploreOptions(max_depth=2))


class TestIndependence:
    def test_single_writer_writes_commute(self):
        pending = {0: WriteCell("r", "a"), 1: WriteCell("r", "b")}
        assert independent(StepAction(0), StepAction(1), pending)

    def test_write_vs_snapshot_same_region_conflict(self):
        pending = {0: WriteCell("r", "a"), 1: SnapshotRegion("r")}
        assert not independent(StepAction(0), StepAction(1), pending)
        pending = {0: WriteCell("other", "a"), 1: SnapshotRegion("r")}
        assert independent(StepAction(0), StepAction(1), pending)

    def test_blocks_commute_iff_different_memory(self):
        assert independent(BlockAction(0, (0,)), BlockAction(1, (1,)), {})
        assert not independent(BlockAction(0, (0,)), BlockAction(0, (1,)), {})

    def test_overlapping_pids_never_commute(self):
        assert not independent(BlockAction(0, (0, 1)), BlockAction(1, (1,)), {})
        assert not independent(StepAction(0), CrashAction(0), {})

    def test_crash_commutes_with_disjoint_actions(self):
        assert independent(CrashAction(0), StepAction(1), {1: SnapshotRegion("r")})
        assert independent(CrashAction(0), BlockAction(0, (1, 2)), {})

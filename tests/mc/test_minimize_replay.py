"""The mutation self-test: catch, minimize, save, re-drive.

ISSUE acceptance: the deliberately broken emulation variant (freshness loop
removed) must be *caught* by the checker, the counterexample *minimized* by
ddmin, and the minimized schedule *replayable* from its JSON file.
"""

import pytest

from repro.mc import (
    EmulationScenario,
    action_from_json,
    action_to_json,
    explore,
    load_replay,
    minimize_schedule,
    replay_file,
    replay_schedule,
    replay_to_json,
)
from repro.runtime.scheduler import BlockAction, CrashAction, StepAction


def test_mutation_is_caught():
    report = explore(EmulationScenario(processes=2, k=1, mutate="skip-freshness"))
    assert not report.ok
    assert report.violation.property_name == "snapshot-legality"
    # The same configuration unmutated passes: the oracle is load-bearing.
    assert explore(EmulationScenario(processes=2, k=1)).ok


def test_counterexample_minimizes_and_replays(tmp_path):
    scenario = EmulationScenario(processes=2, k=1, mutate="skip-freshness")
    report = explore(scenario)
    result = minimize_schedule(scenario, report.violation.schedule)
    assert len(result.schedule) <= len(report.violation.schedule)
    assert result.violation.property_name == "snapshot-legality"

    # 1-minimality: dropping any single remaining action kills reproduction.
    for index in range(len(result.schedule)):
        candidate = result.schedule[:index] + result.schedule[index + 1 :]
        if not candidate:
            continue
        outcome = replay_schedule(scenario, candidate)
        assert not outcome.reproduced

    path = tmp_path / "counterexample.json"
    path.write_text(replay_to_json(scenario, result.schedule, result.violation))
    loaded, outcome = replay_file(str(path))
    assert loaded.scenario.name == scenario.name
    assert outcome.reproduced
    assert outcome.violation.property_name == result.violation.property_name


def test_minimize_rejects_healthy_schedule():
    scenario = EmulationScenario(processes=2, k=1)
    report = explore(scenario)
    assert report.ok
    # Any terminal schedule of the healthy scenario reproduces nothing.
    healthy_prefix = (BlockAction(0, (0, 1)),)
    with pytest.raises(ValueError, match="does not reproduce"):
        minimize_schedule(scenario, healthy_prefix)


def test_replay_of_healthy_scenario_is_clean():
    scenario = EmulationScenario(processes=2, k=1)
    outcome = replay_schedule(scenario, (BlockAction(0, (0, 1)),))
    assert not outcome.reproduced
    assert outcome.instance.scheduler.all_done()


def test_action_codec_round_trips():
    actions = [
        StepAction(3),
        BlockAction(2, (0, 2, 5)),
        CrashAction(1),
    ]
    for action in actions:
        assert action_from_json(action_to_json(action)) == action


def test_load_replay_rejects_unknown_schema():
    with pytest.raises(ValueError, match="repro-mc-replay-v1"):
        load_replay('{"schema": "something-else"}')

"""Cross-validation: runtime executions vs the topological model filter.

The same model predicates are applied from two independent directions —
:func:`repro.models.admits_run` over block structures the *scheduler*
actually committed, and :class:`repro.models.packed.PackedRunFilter` over
the tops of the *packed* ``SDS^b`` build.  The admitted counts must agree,
and the mc property must flag exactly the escaping runs.
"""

from dataclasses import dataclass, field

from repro.mc import IISScenario, ModelComplianceProperty, explore
from repro.models import (
    IIS_MODEL,
    Adversary,
    KConcurrent,
    KSetConsensus,
    TResilient,
    admits_run,
)
from repro.models.packed import iter_admitted_tops
from repro.runtime.iterated import iis_full_information
from repro.runtime.ops import Decide
from repro.runtime.scheduler import enumerate_executions
from repro.topology.compact import build_sds_packed


def one_round_partitions(n_processes: int) -> set[tuple[tuple[int, ...], ...]]:
    """Every ordered partition the scheduler commits at the one-shot memory
    of a full-participation 1-round IIS run, deduplicated across step
    interleavings."""

    def factory(pid):
        def protocol():
            view = yield from iis_full_information(pid, f"v{pid}", 1)
            yield Decide(view)

        return protocol()

    from repro.analysis.narrate import summarize_block_structure

    partitions: set[tuple[tuple[int, ...], ...]] = set()
    for result in enumerate_executions(
        {pid: factory for pid in range(n_processes)}, n_processes
    ):
        structure = summarize_block_structure(result)
        partitions.add(tuple(structure[0]))
    return partitions


class TestRuntimeVsPackedCounts:
    """|admitted runtime runs| == |admitted packed tops|, model by model."""

    MODELS = (
        IIS_MODEL,
        TResilient(0),
        TResilient(1),
        KConcurrent(1),
        KSetConsensus(1),
        Adversary(0b11),
        Adversary(1, 2),
    )

    def test_two_process_one_round(self):
        runs = one_round_partitions(2)
        assert len(runs) == 3  # {01}, {0}{1}, {1}{0}
        compact = build_sds_packed((0, 1), ((0, 1),), 1)
        assert compact.top_count == 3
        for model in self.MODELS:
            admitted_runtime = sum(
                1
                for blocks in runs
                if admits_run(model, [blocks], participants=(0, 1), n_colors=2)
            )
            admitted_packed = sum(1 for _ in iter_admitted_tops(compact, model))
            assert admitted_runtime == admitted_packed, model.fingerprint

    def test_three_process_one_round(self):
        runs = one_round_partitions(3)
        assert len(runs) == 13  # ordered set partitions of a 3-set
        compact = build_sds_packed((0, 1, 2), ((0, 1, 2),), 1)
        assert compact.top_count == 13
        for model in self.MODELS:
            admitted_runtime = sum(
                1
                for blocks in runs
                if admits_run(model, [blocks], participants=(0, 1, 2), n_colors=3)
            )
            admitted_packed = sum(1 for _ in iter_admitted_tops(compact, model))
            assert admitted_runtime == admitted_packed, model.fingerprint


@dataclass
class ModelCheckedIIS:
    """IIS scenario whose only property asserts the model admits every run."""

    model: object
    processes: int = 2
    name: str = field(init=False)

    def __post_init__(self) -> None:
        self.name = f"model-checked-iis({self.model.fingerprint})"

    def build(self):
        return IISScenario(processes=self.processes, rounds=1).build()

    def properties(self):
        return (ModelComplianceProperty(self.model, self.processes),)


class TestModelComplianceProperty:
    def test_identity_admits_full_exploration(self):
        report = explore(ModelCheckedIIS(IIS_MODEL))
        assert report.ok
        assert report.stats.executions > 0

    def test_non_identity_model_flags_the_escaping_run(self):
        # Full exploration includes the simultaneous run {0,1}, which
        # k_concurrent(1) rejects — the property must name it.
        report = explore(ModelCheckedIIS(KConcurrent(1)))
        assert not report.ok
        assert report.violation.property_name == "model-compliance(k_concurrent(1))"
        assert "leave model" in report.violation.message

    def test_participation_checked_only_at_terminal(self):
        # t_resilient(0) requires everyone to participate; mid-run states
        # where only one process has committed must not trip the property.
        scenario = ModelCheckedIIS(TResilient(0))
        prop = scenario.properties()[0]
        instance = scenario.build()
        assert prop.check_running(instance) is None  # nothing committed yet

"""Worker-parallel frontier splitting: same coverage as the serial walk."""

import pytest

from repro.mc import (
    EmulationScenario,
    ExploreOptions,
    explore,
    explore_parallel,
    frontier,
    frontier_chunks,
)


class TestFrontier:
    def test_frontier_chunks_partition_in_order(self):
        leaves = [((f"a{i}",), frozenset()) for i in range(7)]
        chunks = frontier_chunks(leaves, 3)
        assert len(chunks) == 3
        flattened = [leaf for chunk in chunks for leaf in chunk]
        assert flattened == leaves  # contiguous, order-preserving
        assert {len(chunk) for chunk in chunks} == {2, 3}

    def test_frontier_expands_to_min_leaves(self):
        scenario = EmulationScenario(processes=2, k=1)
        leaves, partial = frontier(scenario, ExploreOptions(), min_leaves=4)
        assert len(leaves) >= 4
        assert partial.ok


class TestParallelExploration:
    def test_matches_serial_coverage(self):
        scenario = EmulationScenario(processes=2, k=1)
        serial = explore(scenario)
        parallel = explore_parallel(scenario, workers=2)
        assert parallel.ok
        assert parallel.outcomes == serial.outcomes
        assert parallel.stats.executions >= serial.stats.executions

    def test_catches_mutation(self):
        scenario = EmulationScenario(processes=2, k=1, mutate="skip-freshness")
        report = explore_parallel(scenario, workers=2)
        assert not report.ok
        assert report.violation.property_name == "snapshot-legality"

    def test_single_worker_is_serial(self):
        scenario = EmulationScenario(processes=2, k=1)
        assert explore_parallel(scenario, workers=1).outcomes == explore(
            scenario
        ).outcomes

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            explore_parallel(EmulationScenario(processes=2, k=1), workers=0)

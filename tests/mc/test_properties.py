"""Property plumbing: the stock oracles fire (and only fire) when they should."""

from dataclasses import dataclass, field

from repro.mc import (
    EmulationScenario,
    ExploreOptions,
    IISScenario,
    ScenarioInstance,
    TaskComplianceProperty,
    explore,
)
from repro.runtime.ops import Decide, WriteCell
from repro.runtime.scheduler import Scheduler, StepAction
from repro.tasks import binary_consensus_task


@dataclass
class DecideOwnInputScenario:
    """Two processes that 'decide' without communicating — no consensus."""

    compliant: bool = False
    name: str = field(init=False)

    def __post_init__(self) -> None:
        self.name = f"decide-own-input(compliant={self.compliant})"

    def build(self) -> ScenarioInstance:
        compliant = self.compliant

        def factory_for(pid, value):
            def factory(_pid):
                def protocol():
                    yield WriteCell("r", value)
                    yield Decide(0 if compliant else value)

                return protocol()

            return factory

        factories = {pid: factory_for(pid, pid) for pid in (0, 1)}
        scheduler = Scheduler(
            factories, 2, record_events=True, track_history=True
        )
        return ScenarioInstance(scheduler)

    def properties(self):
        return (
            TaskComplianceProperty(binary_consensus_task(2), {0: 0, 1: 1}),
        )


class TestTaskCompliance:
    def test_disagreement_is_caught(self):
        report = explore(DecideOwnInputScenario(compliant=False))
        assert not report.ok
        assert report.violation.property_name == "task-compliance"
        assert "not Δ-compliant" in report.violation.message

    def test_agreement_passes(self):
        report = explore(DecideOwnInputScenario(compliant=True))
        assert report.ok
        assert report.stats.executions > 0

    def test_partial_decisions_judged_online(self):
        # One decision extends to an allowed consensus tuple: no violation yet.
        scenario = DecideOwnInputScenario(compliant=False)
        instance = scenario.build()
        scheduler = instance.scheduler
        while not scheduler.processes[0].has_decided:
            scheduler.apply(StepAction(0))
        assert not scheduler.processes[1].has_decided
        prop = scenario.properties()[0]
        assert prop.check_running(instance) is None


class TestStockPropertiesOnHealthyRuns:
    def test_emulation_properties_silent_on_complete_run(self):
        scenario = EmulationScenario(processes=2, k=1)
        instance = scenario.build()
        scheduler = instance.scheduler
        while not scheduler.all_done():
            scheduler.apply(scheduler.enabled_actions()[0])
        for prop in scenario.properties():
            assert prop.check_terminal(instance) is None

    def test_iis_properties_silent_everywhere(self):
        report = explore(
            IISScenario(processes=2, rounds=2),
            ExploreOptions(stop_on_violation=False),
        )
        assert report.ok

"""Model-aware persistent cache: key extension, slugs, per-model breakdown.

The compatibility contract is load-bearing: the identity model must leave
both the structure key *and* the stored bytes of full-build entries exactly
as they were before the model subsystem existed, so a warmed pre-PR cache
keeps hitting.
"""

import pytest

from repro.models import Adversary, IIS_MODEL, KConcurrent, TResilient
from repro.models.base import ModelRestrictionEmpty
from repro.models.packed import ensure_restricted, restrict_compact
from repro.topology import sds_cache
from repro.topology.compact import build_sds_packed

BASE_COLORS = (0, 1, 2)
BASE_TOPS = ((0, 1, 2),)


@pytest.fixture(autouse=True)
def _private_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SDS_CACHE_DIR", str(tmp_path / "sds-cache"))


class TestKeyCompatibility:
    def test_iis_fingerprint_is_a_key_no_op(self):
        plain = sds_cache.structure_key(BASE_COLORS, BASE_TOPS, 2)
        assert sds_cache.structure_key(
            BASE_COLORS, BASE_TOPS, 2, model_fingerprint=None
        ) == plain
        assert sds_cache.structure_key(
            BASE_COLORS, BASE_TOPS, 2, model_fingerprint="iis"
        ) == plain

    def test_models_get_distinct_keys(self):
        plain = sds_cache.structure_key(BASE_COLORS, BASE_TOPS, 2)
        keys = {
            sds_cache.structure_key(
                BASE_COLORS, BASE_TOPS, 2, model_fingerprint=m.fingerprint
            )
            for m in (TResilient(0), TResilient(1), KConcurrent(1))
        }
        assert plain not in keys
        assert len(keys) == 3

    def test_iis_entry_bytes_identical_to_pre_model_entry(self):
        """Storing through the iis path reproduces the pre-PR file, byte for
        byte — same filename, same marshal blob."""
        compact = build_sds_packed(BASE_COLORS, BASE_TOPS, 1)
        pre_key = sds_cache.structure_key(BASE_COLORS, BASE_TOPS, 1)
        assert sds_cache.store(pre_key, compact)
        directory = sds_cache.cache_dir()
        pre_path = sds_cache._entry_path(directory, pre_key)
        pre_bytes = pre_path.read_bytes()
        pre_path.unlink()

        restricted, outcome = ensure_restricted(BASE_COLORS, BASE_TOPS, 1, IIS_MODEL)
        assert outcome == "built"
        assert restricted.top_count == compact.top_count
        iis_key = sds_cache.structure_key(
            BASE_COLORS, BASE_TOPS, 1, model_fingerprint=IIS_MODEL.fingerprint
        )
        iis_path = sds_cache._entry_path(directory, iis_key, model_slug=IIS_MODEL.slug)
        assert iis_path == pre_path
        assert iis_path.read_bytes() == pre_bytes


class TestModelEntries:
    def test_store_load_roundtrip_with_slug(self):
        model = KConcurrent(1)
        full = build_sds_packed(BASE_COLORS, BASE_TOPS, 1)
        restricted = restrict_compact(full, model)
        key = sds_cache.structure_key(
            BASE_COLORS, BASE_TOPS, 1, model_fingerprint=model.fingerprint
        )
        assert sds_cache.store(key, restricted, model_slug=model.slug)
        # The plain-slug path must NOT see the model entry, and vice versa.
        assert sds_cache.load(key) is None
        loaded = sds_cache.load(key, model_slug=model.slug)
        assert loaded is not None
        assert loaded.top_count == restricted.top_count
        assert loaded.tops == restricted.tops

    def test_entry_model_slug_parses_filenames(self):
        directory = sds_cache.cache_dir()
        key = "ab" * 32
        assert sds_cache.entry_model_slug(sds_cache._entry_path(directory, key)) == "iis"
        tagged = sds_cache._entry_path(directory, key, model_slug="t_resilient-1")
        assert sds_cache.entry_model_slug(tagged) == "t_resilient-1"

    def test_cache_info_breaks_entries_down_per_model(self):
        full = build_sds_packed(BASE_COLORS, BASE_TOPS, 1)
        sds_cache.store(sds_cache.structure_key(BASE_COLORS, BASE_TOPS, 1), full)
        for model in (KConcurrent(1), TResilient(1)):
            key = sds_cache.structure_key(
                BASE_COLORS, BASE_TOPS, 1, model_fingerprint=model.fingerprint
            )
            sds_cache.store(key, restrict_compact(full, model), model_slug=model.slug)
        info = sds_cache.cache_info()
        assert info["entries"] == 3
        models = info["models"]
        assert set(models) == {"iis", "k_concurrent-1", "t_resilient-1"}
        assert all(bucket["entries"] == 1 for bucket in models.values())
        assert sum(bucket["bytes"] for bucket in models.values()) == info["bytes"]


class TestEnsureRestricted:
    def test_outcome_ladder_built_then_hit_then_rebuilt(self):
        model = KConcurrent(1)
        _, outcome = ensure_restricted(BASE_COLORS, BASE_TOPS, 1, model)
        assert outcome == "built"
        # Second call: the restricted entry itself is cached now.
        restricted, outcome = ensure_restricted(BASE_COLORS, BASE_TOPS, 1, model)
        assert outcome == "hit"
        # Drop the restricted entry: the rebuild is deterministic, so the
        # re-stored entry carries identical arrays.
        key = sds_cache.structure_key(
            BASE_COLORS, BASE_TOPS, 1, model_fingerprint=model.fingerprint
        )
        sds_cache._entry_path(
            sds_cache.cache_dir(), key, model_slug=model.slug
        ).unlink()
        rebuilt, outcome = ensure_restricted(BASE_COLORS, BASE_TOPS, 1, model)
        assert outcome == "built"
        assert rebuilt.tops == restricted.tops
        assert rebuilt.levels == restricted.levels

    def test_identity_model_uses_the_plain_path(self):
        _, outcome = ensure_restricted(BASE_COLORS, BASE_TOPS, 1, IIS_MODEL)
        assert outcome == "built"
        full, outcome = ensure_restricted(BASE_COLORS, BASE_TOPS, 1, IIS_MODEL)
        assert outcome == "hit"
        # ... and is the exact entry a plain cache load sees.
        key = sds_cache.structure_key(BASE_COLORS, BASE_TOPS, 1)
        assert sds_cache.load(key).tops == full.tops

    def test_empty_restriction_raises_and_caches_nothing(self):
        with pytest.raises(ModelRestrictionEmpty):
            ensure_restricted((0, 1), ((0, 1),), 1, Adversary(0b100))
        info = sds_cache.cache_info()
        assert "adversary-4" not in info["models"]

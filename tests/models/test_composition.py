"""Model composition: `a&b` is the pointwise intersection, canonicalized."""

import pickle

import pytest

from repro.models import (
    IIS_MODEL,
    Composed,
    ModelRestrictionEmpty,
    compose_models,
    parse_model,
)
from repro.models.reference import restrict_subdivision
from repro.models.zoo import KConcurrent, TResilient
from repro.service.protocol import ProtocolError, validate_request
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
)
from repro.topology.vertex import Vertex

_BASE3 = SimplicialComplex([Simplex(Vertex(c, c) for c in (0, 1, 2))])


def _kept_tops(model, rounds=1, base=_BASE3):
    subdivision = iterated_standard_chromatic_subdivision(base, rounds)
    restricted = restrict_subdivision(subdivision, rounds, model)
    return set(restricted.complex.maximal_simplices)


class TestParsing:
    def test_ampersand_parses_to_composed(self):
        model = parse_model("t_resilient(1)&k_concurrent(2)")
        assert isinstance(model, Composed)
        assert model.fingerprint == "t_resilient(1)&k_concurrent(2)"
        assert model.slug == "t_resilient-1-and-k_concurrent-2"
        assert not model.is_identity

    def test_identity_components_drop_out(self):
        assert parse_model("iis&t_resilient(1)") == TResilient(1)
        assert parse_model("iis&iis") is IIS_MODEL

    def test_duplicates_collapse(self):
        assert parse_model("t_resilient(1)&t_resilient(1)") == TResilient(1)

    def test_empty_component_rejected(self):
        with pytest.raises(ValueError, match="empty component"):
            parse_model("t_resilient(1)&")

    def test_component_bound_enforced(self):
        text = "&".join(f"t_resilient({i})" for i in range(5))
        with pytest.raises(ValueError, match="at most 4"):
            parse_model(text)

    def test_component_arguments_still_bounds_checked(self):
        with pytest.raises(ValueError, match="t_resilient"):
            parse_model("t_resilient(-1)&k_concurrent(2)")


class TestCanonicalization:
    def test_compose_flattens_nested(self):
        inner = compose_models(TResilient(1), KConcurrent(2))
        outer = compose_models(inner, TResilient(0))
        assert isinstance(outer, Composed)
        assert [c.fingerprint for c in outer.components] == [
            "t_resilient(1)",
            "k_concurrent(2)",
            "t_resilient(0)",
        ]

    def test_equality_and_hash_follow_components(self):
        a = parse_model("t_resilient(1)&k_concurrent(2)")
        b = compose_models(TResilient(1), KConcurrent(2))
        assert a == b
        assert hash(a) == hash(b)
        assert a != compose_models(KConcurrent(2), TResilient(1))  # ordered

    def test_pickle_round_trip(self):
        model = parse_model("t_resilient(1)&k_concurrent(2)")
        clone = pickle.loads(pickle.dumps(model))
        assert clone == model
        assert clone.fingerprint == model.fingerprint


class TestIntersectionSemantics:
    def test_kept_tops_equal_hand_built_intersection(self):
        """The composition's kept top set IS the intersection of the
        components' kept top sets — on counts and on the sets themselves."""
        t1 = TResilient(1)
        k2 = KConcurrent(2)
        composed = parse_model("t_resilient(1)&k_concurrent(2)")
        tops_t1 = _kept_tops(t1)
        tops_k2 = _kept_tops(k2)
        tops_and = _kept_tops(composed)
        assert tops_and == tops_t1 & tops_k2
        assert len(tops_and) == len(tops_t1 & tops_k2)
        # The intersection is strictly smaller than each component alone —
        # the conjunction genuinely restricts beyond both.
        assert len(tops_and) < len(tops_t1)
        assert len(tops_and) < len(tops_k2)

    def test_contradictory_composition_is_restriction_empty(self):
        """One all-member first block (t_resilient(0)) vs all singleton
        blocks (k_concurrent(1)): no multi-member run survives."""
        base2 = SimplicialComplex([Simplex(Vertex(c, c) for c in (0, 1))])
        model = parse_model("t_resilient(0)&k_concurrent(1)")
        with pytest.raises(ModelRestrictionEmpty):
            restrict_subdivision(
                iterated_standard_chromatic_subdivision(base2, 1), 1, model
            )

    def test_predicates_conjunct(self):
        composed = parse_model("t_resilient(1)&k_concurrent(2)")
        blocks_ok = ((0, 1), (2,))  # first block misses 1 <= t, sizes <= 2
        blocks_bad = ((0, 1, 2),)  # size-3 block breaks k_concurrent(2)
        assert composed.keep_round(blocks_ok)
        assert not composed.keep_round(blocks_bad)
        assert composed.keep_participation(frozenset({0, 1}), 3)
        assert not composed.keep_participation(frozenset({0}), 3)


class TestWireRejection:
    def test_composed_model_string_is_a_typed_protocol_error(self):
        request = {
            "v": "repro-svc-v1",
            "op": "solve",
            "task": {"name": "consensus", "args": [2]},
            "model": "t_resilient(0)&k_concurrent(1)",
            "max_rounds": 1,
        }
        with pytest.raises(ProtocolError) as excinfo:
            validate_request(request)
        assert excinfo.value.kind == "unknown-model"
        assert "not expressible" in str(excinfo.value)

    def test_plain_model_string_still_normalizes(self):
        request = {
            "v": "repro-svc-v1",
            "op": "solve",
            "task": {"name": "consensus", "args": [2]},
            "model": "t_resilient(0)",
            "max_rounds": 1,
        }
        normalized = validate_request(request)
        assert normalized["model"] == {"name": "t_resilient", "args": [0]}

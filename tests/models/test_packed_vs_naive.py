"""Differential suite: packed streaming filter vs naive object-level oracle.

Two independent implementations decompose a top simplex of ``SDS^b`` into
its run (nested ordered partitions): the packed filter reads int arrays
(:mod:`repro.models.packed`), the reference engine reads vertex payloads
(:mod:`repro.models.reference`).  They must keep *exactly* the same top
sets on every ``(n, b, model)``, and the solver engines built on them —
in-RAM kernel, in-RAM naive search, packed/sharded int kernel — must agree
on verdicts and first maps for model-restricted probes across the task zoo.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solvability import SearchOptions, _probe_level, probe_level_sharded
from repro.models import (
    IIS_MODEL,
    Adversary,
    KConcurrent,
    KSetConsensus,
    TResilient,
    resolve_model,
)
from repro.models.base import ModelRestrictionEmpty
from repro.models.packed import (
    build_sds_packed_restricted,
    iter_admitted_tops,
    restrict_compact,
    run_filter,
)
from repro.models.reference import restrict_subdivision, restricted_tops
from repro.service.registry import task_registry, resolve_task
from repro.topology.compact import build_sds_packed, materialize_vertex_chain
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import iterated_standard_chromatic_subdivision
from repro.topology.vertex import Vertex, vertices_of


def full_mask(n_colors: int) -> int:
    return (1 << n_colors) - 1


def model_pool(n_colors: int):
    """A spread of models exercising every family, incl. identity-equivalent
    degenerate parameters, over an ``n_colors``-process base."""
    return [
        IIS_MODEL,
        TResilient(0),
        TResilient(1),
        TResilient(n_colors),  # degenerate: identity on runs
        KConcurrent(1),
        KConcurrent(n_colors + 1),  # degenerate
        KSetConsensus(1),
        KSetConsensus(2),
        KSetConsensus(n_colors + 1),  # degenerate
        Adversary(full_mask(n_colors)),
        Adversary(*(1 << i for i in range(n_colors))),  # wait-free = identity
    ]


@settings(max_examples=20, deadline=None)
@given(data=st.data(), n=st.integers(0, 2), b=st.integers(1, 2))
def test_packed_filter_equals_naive_restriction(data, n, b):
    if n == 2 and b == 2:
        b = 1  # keep the worst case out of the per-example budget
    n_colors = n + 1
    model = data.draw(st.sampled_from(model_pool(n_colors)), label="model")

    base_colors = tuple(range(n_colors))
    base_tops = (tuple(range(n_colors)),)
    compact = build_sds_packed(base_colors, base_tops, b)

    base_verts = sorted(
        SimplicialComplex.from_vertices(vertices_of(range(n_colors))).vertices,
        key=Vertex.sort_key,
    )
    chain = materialize_vertex_chain(compact.levels, base_verts)
    packed_kept = {
        Simplex(chain[vid] for vid in top)
        for top, _mask in iter_admitted_tops(compact, model)
    }

    base = SimplicialComplex.from_vertices(vertices_of(range(n_colors)))
    subdivision = iterated_standard_chromatic_subdivision(base, b)
    naive_kept = restricted_tops(subdivision, b, model)

    assert packed_kept == frozenset(naive_kept)

    # Third implementation: the orbit-pruned builder, which never generates
    # rejected tops at all.  Its own vid numbering — compare materialized.
    pruned = build_sds_packed_restricted(base_colors, base_tops, b, model)
    pruned_chain = materialize_vertex_chain(pruned.levels, base_verts)
    pruned_kept = {
        Simplex(pruned_chain[vid] for vid in top) for top in pruned.tops
    }
    assert pruned_kept == packed_kept
    # Identity-equivalent parameters keep everything.
    degenerate = model in (
        TResilient(n_colors),
        KConcurrent(n_colors + 1),
        KSetConsensus(n_colors + 1),
        Adversary(*(1 << i for i in range(n_colors))),
        IIS_MODEL,
    )
    if degenerate:
        assert len(packed_kept) == compact.top_count


def test_restriction_counts_pin_the_semantics():
    """Exact kept-top counts at (n, b) = (2, 2) — a regression anchor."""
    compact = build_sds_packed((0, 1, 2), ((0, 1, 2),), 2)
    assert compact.top_count == 169

    def kept(model) -> int:
        return sum(1 for _ in iter_admitted_tops(compact, model))

    assert kept(TResilient(0)) == 1  # the fully-synchronous run
    assert kept(TResilient(1)) == 16
    assert kept(KConcurrent(1)) == 36  # 6 sequential runs per round
    assert kept(KSetConsensus(2)) == 49  # 7 full-participation runs per round
    assert kept(Adversary(0b111)) == 1

    def built(model) -> int:
        return build_sds_packed_restricted(
            (0, 1, 2), ((0, 1, 2),), 2, model
        ).top_count

    assert built(TResilient(0)) == 1
    assert built(TResilient(1)) == 16
    assert built(KConcurrent(1)) == 36
    assert built(KSetConsensus(2)) == 49
    assert built(Adversary(0b111)) == 1


def test_restrict_compact_shares_arrays_and_raises_on_empty():
    compact = build_sds_packed((0, 1), ((0, 1),), 1)
    restricted = restrict_compact(compact, TResilient(0))
    assert restricted.levels is compact.levels
    assert restricted.carrier_masks is compact.carrier_masks
    assert restricted.top_count < compact.top_count
    assert restrict_compact(compact, IIS_MODEL) is compact
    with pytest.raises(ModelRestrictionEmpty):
        restrict_compact(compact, Adversary(0b100))
    with pytest.raises(ModelRestrictionEmpty):
        build_sds_packed_restricted((0, 1), ((0, 1),), 1, Adversary(0b100))


def test_reference_restriction_is_identity_for_iis():
    base = SimplicialComplex.from_vertices(vertices_of(range(2)))
    subdivision = iterated_standard_chromatic_subdivision(base, 1)
    assert restrict_subdivision(subdivision, 1, IIS_MODEL) is subdivision
    restricted = restrict_subdivision(subdivision, 1, KConcurrent(1))
    assert restricted.base is subdivision.base
    kept = restricted.complex.maximal_simplices
    assert kept < subdivision.complex.maximal_simplices
    for top in kept:  # carriers delegate to the parent unchanged
        assert restricted.carrier_of(top) == subdivision.carrier_of(top)


def test_filter_memoization_shares_ancestor_verdicts():
    compact = build_sds_packed((0, 1, 2), ((0, 1, 2),), 2)
    flt = run_filter(compact, KConcurrent(2))
    kept = [top for top, mask in compact_tops_with_masks(compact) if flt.admits(top, mask)]
    # Every top consulted the memo for its level-1 parent; parents are far
    # fewer than tops, so the memo must be strictly smaller than 2x tops.
    assert len(flt._memo) < 2 * compact.top_count
    assert 0 < len(kept) < compact.top_count


def compact_tops_with_masks(compact):
    from repro.topology.collapse import iter_tops_with_masks

    return iter_tops_with_masks(compact)


# -- solver-engine parity on restricted probes ------------------------------

ZOO_MODELS = [
    resolve_model("t_resilient", (1,)),
    resolve_model("k_concurrent", (1,)),
    resolve_model("k_set_consensus", (2,)),
]

ZOO_SPECS = [
    ("identity", (2,)),
    ("constant", (3,)),
    ("consensus", (2,)),
    ("set_consensus", (3, 2)),
    ("approximate_agreement", (2, 3)),
    ("participating_set", (3,)),
    ("graph_path", (3,)),
    ("graph_cycle", (5,)),
]


@pytest.mark.parametrize("name,args", ZOO_SPECS)
def test_kernel_vs_naive_on_restricted_probes(name, args):
    """Verdict + first-map parity of all three engines, every zoo task."""
    assert name in task_registry()
    task = resolve_task(name, args)
    for model in ZOO_MODELS:
        kernel = _probe_level(task, 1, 200_000, SearchOptions(kernel=True), model=model)
        naive = _probe_level(task, 1, 200_000, SearchOptions(kernel=False), model=model)
        assert kernel[1].satisfiable == naive[1].satisfiable, model.fingerprint
        if kernel[0] is not None:
            assert kernel[0] == naive[0], model.fingerprint

        sharded_map, sharded_report, extras = probe_level_sharded(
            task, 1, node_budget=200_000,
            options=SearchOptions(mask_backend="int"), model=model,
        )
        assert extras["backend"] == "int"
        assert sharded_report.satisfiable == kernel[1].satisfiable, model.fingerprint
        if sharded_map is not None:
            # The packed variable order differs from the in-RAM compile's,
            # so the *first* map may differ; it must still machine-validate
            # against the restricted complex.
            from repro.core.solvability import validate_decision_map
            from repro.topology.maps import SimplicialMap

            restricted = restrict_subdivision(
                iterated_standard_chromatic_subdivision(task.input_complex, 1),
                1,
                model,
            )
            decision_map = SimplicialMap(
                restricted.complex, task.output_complex, sharded_map
            )
            validate_decision_map(restricted, task, decision_map)

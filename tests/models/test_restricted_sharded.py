"""Three-way differential: restricted shard builds + model-aware numpy kernel.

The model-native fast path has three independent implementations of
"solvability in a sub-IIS model at level ``b``":

1. the **object-level oracle** — :func:`restrict_subdivision` over the
   in-RAM subdivision (:mod:`repro.models.reference`), consumed by
   :func:`_probe_level`;
2. the **restricted streaming shard builder** — orbit-pruned,
   keep-before-materialize (:func:`repro.topology.shards.build_sds_sharded`
   with ``model=``), searched by the packed int kernel;
3. the **model-aware numpy mask kernel** — the same store compiled into
   the uint64 array representation (:mod:`repro.core.mask_kernel`).

They must agree exactly: the sharded store reassembles to the compact
restricted build payload-for-payload, the numpy kernel matches the int
kernel map-for-map and statistic-for-statistic, and both match the oracle's
verdict — for every zoo model family including a ``&`` composition, at
Hypothesis-random ``(n, b, shard size)``.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solvability import SearchOptions, _probe_level, probe_level_sharded
from repro.models import (
    IIS_MODEL,
    Adversary,
    KConcurrent,
    KSetConsensus,
    TResilient,
    compose_models,
)
from repro.models.base import ModelRestrictionEmpty
from repro.models.packed import build_sds_packed_restricted
from repro.obs import capture
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    set_consensus_task,
)
from repro.topology import sds_cache
from repro.topology.shards import ensure_sharded, open_sharded


@pytest.fixture(scope="module", autouse=True)
def _isolated_sds_cache(tmp_path_factory):
    old = os.environ.get("REPRO_SDS_CACHE_DIR")
    os.environ["REPRO_SDS_CACHE_DIR"] = str(tmp_path_factory.mktemp("sds-cache"))
    yield
    if old is None:
        del os.environ["REPRO_SDS_CACHE_DIR"]
    else:
        os.environ["REPRO_SDS_CACHE_DIR"] = old


def model_pool(n_colors: int):
    """Every zoo family plus a two-component ``&`` composition."""
    return [
        TResilient(0),
        TResilient(1),
        KConcurrent(1),
        KSetConsensus(1),
        KSetConsensus(2),
        Adversary(*(range(1, 1 << n_colors))),  # full adversary = identity runs
        compose_models(TResilient(1), KSetConsensus(2)),
    ]


class TestStoreEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        data=st.data(),
        n=st.integers(0, 2),
        b=st.integers(1, 2),
        shard_size=st.integers(1, 300),
    )
    def test_restricted_sharded_reassembles_to_compact_build(
        self, data, n, b, shard_size, tmp_path_factory
    ):
        if n == 2 and b == 2:
            b = 1  # the (2, 2) case dominates the example budget
        n_colors = n + 1
        model = data.draw(st.sampled_from(model_pool(n_colors)), label="model")
        base_colors = tuple(range(n_colors))
        base_tops = (tuple(range(n_colors)),)
        directory = tmp_path_factory.mktemp("store")

        try:
            compact = build_sds_packed_restricted(base_colors, base_tops, b, model)
        except ModelRestrictionEmpty:
            with pytest.raises(ModelRestrictionEmpty):
                ensure_sharded(
                    base_colors,
                    base_tops,
                    b,
                    shard_size=shard_size,
                    directory=directory,
                    model=model,
                )
            return
        sharded = ensure_sharded(
            base_colors,
            base_tops,
            b,
            shard_size=shard_size,
            directory=directory,
            model=model,
        )
        assert sharded.model_fingerprint == model.fingerprint
        assert sharded.to_compact().to_payload() == compact.to_payload()

    def test_reopen_hits_and_wrong_model_misses(self, tmp_path):
        base_colors, base_tops = (0, 1, 2), ((0, 1, 2),)
        model = TResilient(1)
        built = ensure_sharded(
            base_colors, base_tops, 2, shard_size=64, directory=tmp_path, model=model
        )
        reopened = open_sharded(
            base_colors, base_tops, 2, shard_size=64, directory=tmp_path, model=model
        )
        assert reopened is not None
        assert reopened.top_count == built.top_count
        # A different model (or none) must not see the restricted manifest.
        assert (
            open_sharded(
                base_colors, base_tops, 2, shard_size=64, directory=tmp_path
            )
            is None
        )
        assert (
            open_sharded(
                base_colors,
                base_tops,
                2,
                shard_size=64,
                directory=tmp_path,
                model=TResilient(0),
            )
            is None
        )

    def test_iis_manifest_stays_byte_identical(self, tmp_path):
        """The identity model writes the exact pre-model shard files."""
        base_colors, base_tops = (0, 1), ((0, 1),)
        plain_dir, iis_dir = tmp_path / "plain", tmp_path / "iis"
        ensure_sharded(base_colors, base_tops, 2, shard_size=7, directory=plain_dir)
        ensure_sharded(
            base_colors, base_tops, 2, shard_size=7, directory=iis_dir, model=IIS_MODEL
        )
        plain_files = sorted(p.name for p in plain_dir.iterdir())
        iis_files = sorted(p.name for p in iis_dir.iterdir())
        assert plain_files == iis_files
        for name in plain_files:
            assert (plain_dir / name).read_bytes() == (iis_dir / name).read_bytes()


class TestThreeWayProbeParity:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data(), shard_size=st.integers(1, 400))
    def test_numpy_equals_int_equals_oracle(self, data, shard_size, tmp_path_factory):
        model = data.draw(st.sampled_from(model_pool(3)), label="model")
        task = data.draw(
            st.sampled_from(
                [binary_consensus_task(3), set_consensus_task(3, 2)]
            ),
            label="task",
        )
        directory = tmp_path_factory.mktemp("probe")
        numpy_map, numpy_report, numpy_extras = probe_level_sharded(
            task,
            1,
            options=SearchOptions(mask_backend="numpy"),
            shard_size=shard_size,
            directory=directory,
            model=model,
        )
        assert numpy_extras["backend"] == "numpy"
        int_map, int_report, int_extras = probe_level_sharded(
            task,
            1,
            options=SearchOptions(mask_backend="int"),
            shard_size=shard_size,
            directory=directory,
            model=model,
        )
        assert int_extras["backend"] == "int"
        # Exact first-map and full-statistics parity between the backends.
        assert numpy_map == int_map
        assert numpy_report.satisfiable == int_report.satisfiable
        assert numpy_report.nodes_explored == int_report.nodes_explored
        assert numpy_report.conflicts == int_report.conflicts
        assert numpy_report.backjumps == int_report.backjumps
        assert numpy_report.exhausted == int_report.exhausted
        assert numpy_report.vertices == int_report.vertices
        # Verdict parity with the object-level reference oracle.
        oracle = _probe_level(task, 1, 2_000_000, SearchOptions(), model=model)
        assert oracle[1].satisfiable == numpy_report.satisfiable

    def test_every_zoo_model_compiles_on_numpy(self):
        """Zero ``UnsupportedByArrayKernel`` across the model zoo."""
        task = binary_consensus_task(3)
        for model in model_pool(3):
            _, _, extras = probe_level_sharded(
                task,
                1,
                options=SearchOptions(mask_backend="numpy"),
                shard_size=128,
                model=model,
            )
            assert extras["backend"] == "numpy", model.fingerprint


class TestParallelCensus:
    def test_parallel_census_is_bit_identical_to_serial(self, tmp_path):
        task = binary_consensus_task(3)
        model = TResilient(1)
        serial = probe_level_sharded(
            task,
            2,
            options=SearchOptions(mask_backend="numpy"),
            shard_size=20,
            directory=tmp_path,
            model=model,
        )
        assert serial[2]["shards"] > 1
        parallel = probe_level_sharded(
            task,
            2,
            options=SearchOptions(mask_backend="numpy"),
            shard_size=20,
            directory=tmp_path,
            model=model,
            max_workers=3,
        )
        assert parallel[2]["census_workers"] > 1
        assert serial[2]["census_workers"] == 0
        assert parallel[0] == serial[0]
        assert parallel[2]["collapse"] == serial[2]["collapse"]
        for field in ("satisfiable", "nodes_explored", "conflicts", "backjumps"):
            assert getattr(parallel[1], field) == getattr(serial[1], field)

    def test_parallel_census_identity_store(self, tmp_path):
        task = binary_consensus_task(3)
        serial = probe_level_sharded(
            task,
            1,
            options=SearchOptions(mask_backend="numpy"),
            shard_size=50,
            directory=tmp_path,
        )
        parallel = probe_level_sharded(
            task,
            1,
            options=SearchOptions(mask_backend="numpy"),
            shard_size=50,
            directory=tmp_path,
            max_workers=2,
        )
        assert parallel[0] == serial[0]
        assert parallel[2]["collapse"] == serial[2]["collapse"]


class TestFallbackCounter:
    def test_auto_fallback_increments_obs_counter(self):
        # 81 candidate outputs exceed the 64-bit domain word: auto degrades
        # to int and the degradation must be counted, not silent.
        task = approximate_agreement_task(2, 81)
        with capture() as session:
            _, _, extras = probe_level_sharded(
                task, 1, options=SearchOptions(mask_backend="auto")
            )
            assert extras["backend"] == "int"
            assert session.metrics.counter("kernel.mask_fallback").value == 1

    def test_numpy_success_leaves_counter_untouched(self):
        task = binary_consensus_task(2)
        with capture() as session:
            _, _, extras = probe_level_sharded(
                task,
                1,
                options=SearchOptions(mask_backend="auto"),
                model=TResilient(1),
            )
            assert extras["backend"] == "numpy"
            assert session.metrics.counter("kernel.mask_fallback").value == 0


class TestShardCacheAccounting:
    def test_info_and_prune_by_model_slug(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SDS_CACHE_DIR", str(tmp_path))
        base_colors, base_tops = (0, 1, 2), ((0, 1, 2),)
        model = TResilient(1)
        ensure_sharded(base_colors, base_tops, 2, shard_size=64)
        ensure_sharded(base_colors, base_tops, 2, shard_size=64, model=model)
        info = sds_cache.cache_info()
        assert set(info["shard_models"]) == {"iis", model.slug}
        assert info["shard_models"][model.slug]["sets"] == 1
        assert (
            sum(bucket["bytes"] for bucket in info["shard_models"].values())
            == info["shard_bytes"]
        )
        report = sds_cache.prune(0, model_slug=model.slug)
        assert report["removed_units"] == 1
        after = sds_cache.cache_info()
        assert set(after["shard_models"]) == {"iis"}
        # The identity store survived the slug-scoped prune.
        assert (
            open_sharded(base_colors, base_tops, 2, shard_size=64) is not None
        )

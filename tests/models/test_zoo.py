"""Model zoo unit semantics + known-answer solvability facts.

The known answers are the load-bearing part: models must *change verdicts*
in the documented direction (consensus becomes solvable under synchrony or
sequential scheduling; k-set consensus becomes solvable given k-set
consensus power), and degenerate parameters must restrict nothing.
"""

import pickle

import pytest

from repro.core.solvability import SolvabilityStatus, solve_task
from repro.models import (
    IIS_MODEL,
    Adversary,
    KConcurrent,
    KSetConsensus,
    Model,
    ModelRestrictionEmpty,
    TResilient,
    admits_run,
    model_registry,
    parse_model,
    resolve_model,
)
from repro.runtime.adversary import AdversarySpec
from repro.tasks import binary_consensus_task, set_consensus_task


class TestModelIdentity:
    def test_fingerprints_and_slugs(self):
        assert IIS_MODEL.fingerprint == "iis"
        assert TResilient(1).fingerprint == "t_resilient(1)"
        assert TResilient(1).slug == "t_resilient-1"
        assert Adversary(3, 5).fingerprint == "adversary(3,5)"
        assert Adversary(3, 5).slug == "adversary-3-5"

    def test_equality_and_hash_are_value_based(self):
        assert TResilient(1) == TResilient(1)
        assert hash(TResilient(1)) == hash(TResilient(1))
        assert TResilient(1) != TResilient(2)
        assert TResilient(1) != KConcurrent(1)

    def test_models_pickle_roundtrip(self):
        for model in (IIS_MODEL, TResilient(2), KConcurrent(1), Adversary(3, 5)):
            clone = pickle.loads(pickle.dumps(model))
            assert clone == model
            assert clone.fingerprint == model.fingerprint

    def test_adversary_canonicalizes_through_spec(self):
        assert Adversary(5, 3, 3).args == (3, 5)
        assert Adversary.from_spec(AdversarySpec.wait_free(3)).args == (1, 2, 4)

    def test_base_keep_round_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Model().keep_round(((0,),))


class TestResolveAndParse:
    def test_registry_lists_all_five_families(self):
        assert sorted(model_registry()) == [
            "adversary",
            "iis",
            "k_concurrent",
            "k_set_consensus",
            "t_resilient",
        ]

    def test_resolve_checks_names_arity_and_bounds(self):
        assert resolve_model("iis") == IIS_MODEL
        assert resolve_model("t_resilient", (1,)) == TResilient(1)
        with pytest.raises(ValueError, match="unknown model"):
            resolve_model("byzantine")
        with pytest.raises(ValueError, match="argument"):
            resolve_model("t_resilient", ())
        with pytest.raises(ValueError, match="at least one"):
            resolve_model("adversary", ())
        with pytest.raises(ValueError):
            resolve_model("k_concurrent", (0,))
        with pytest.raises(ValueError):
            resolve_model("t_resilient", (65,))

    def test_parse_accepts_both_spellings(self):
        assert parse_model("iis") == IIS_MODEL
        assert parse_model("t_resilient:1") == TResilient(1)
        assert parse_model("t_resilient(1)") == TResilient(1)
        assert parse_model("adversary(3, 5)") == Adversary(3, 5)
        with pytest.raises(ValueError, match="integers"):
            parse_model("t_resilient:x")


class TestAdmitsRun:
    """The block-structure predicates on hand-written executions."""

    SEQUENTIAL = [[(0,), (1,), (2,)]]  # one round, fully sequential
    SIMULTANEOUS = [[(0, 1, 2)]]  # one round, all together

    def test_iis_admits_everything(self):
        assert admits_run(IIS_MODEL, self.SEQUENTIAL)
        assert admits_run(IIS_MODEL, self.SIMULTANEOUS)

    def test_t_resilient_counts_the_laggards(self):
        assert admits_run(TResilient(0), self.SIMULTANEOUS)
        assert not admits_run(TResilient(0), self.SEQUENTIAL)
        assert admits_run(TResilient(2), self.SEQUENTIAL)
        # participation: with t=0 everyone must show up
        assert not admits_run(
            TResilient(0), self.SIMULTANEOUS, participants=(0, 1, 2), n_colors=4
        )

    def test_k_concurrent_bounds_block_size(self):
        assert admits_run(KConcurrent(1), self.SEQUENTIAL)
        assert not admits_run(KConcurrent(1), self.SIMULTANEOUS)
        assert admits_run(KConcurrent(3), self.SIMULTANEOUS)

    def test_k_set_consensus_bounds_block_count(self):
        assert admits_run(KSetConsensus(1), self.SIMULTANEOUS)
        assert not admits_run(KSetConsensus(2), self.SEQUENTIAL)
        assert admits_run(KSetConsensus(3), self.SEQUENTIAL)

    def test_adversary_needs_a_live_set_in_the_first_block(self):
        fault_free = Adversary(0b111)
        assert admits_run(fault_free, self.SIMULTANEOUS)
        assert not admits_run(fault_free, self.SEQUENTIAL)
        wait_free = Adversary(1, 2, 4)
        assert admits_run(wait_free, self.SEQUENTIAL)
        assert admits_run(wait_free, self.SIMULTANEOUS)


class TestKnownAnswers:
    """Documented verdict flips, through the real solver."""

    def test_consensus_unsolvable_in_full_iis(self):
        result = solve_task(binary_consensus_task(2), 2)
        assert result.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND

    def test_consensus_solvable_when_synchronous(self):
        result = solve_task(
            binary_consensus_task(2), 2, model=resolve_model("t_resilient", (0,))
        )
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 1

    def test_consensus_solvable_when_sequential(self):
        result = solve_task(
            binary_consensus_task(2), 2, model=resolve_model("k_concurrent", (1,))
        )
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 1

    def test_consensus_solvable_under_fault_free_adversary(self):
        result = solve_task(binary_consensus_task(2), 2, model=Adversary(0b11))
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 1

    def test_set_consensus_solvable_given_k_set_consensus_power(self):
        task = set_consensus_task(3, 2)
        assert (
            solve_task(task, 1).status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND
        )
        result = solve_task(task, 1, model=KSetConsensus(2))
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 1

    def test_solvable_verdicts_carry_validated_maps(self):
        result = solve_task(
            binary_consensus_task(2), 1, model=resolve_model("t_resilient", (0,))
        )
        assert result.decision_map is not None  # validate_decision_map ran

    def test_empty_restriction_raises_not_vacuously_solves(self):
        # Live set {2} names a color the 2-process base never has.
        with pytest.raises(ModelRestrictionEmpty):
            solve_task(binary_consensus_task(2), 1, model=Adversary(0b100))


class TestIdentityNoOp:
    """model="iis" must be bit-identical to not passing a model."""

    @pytest.mark.parametrize(
        "task,max_rounds",
        [
            (binary_consensus_task(2), 2),
            (set_consensus_task(3, 2), 1),
        ],
    )
    def test_verdicts_maps_and_stats_match(self, task, max_rounds):
        plain = solve_task(task, max_rounds)
        tagged = solve_task(task, max_rounds, model=IIS_MODEL)
        assert tagged.status == plain.status
        assert tagged.rounds == plain.rounds
        assert [
            (l.rounds, l.satisfiable, l.nodes_explored, l.vertices, l.conflicts,
             l.backjumps, l.exhausted)
            for l in tagged.levels
        ] == [
            (l.rounds, l.satisfiable, l.nodes_explored, l.vertices, l.conflicts,
             l.backjumps, l.exhausted)
            for l in plain.levels
        ]
        if plain.decision_map is not None:
            assert tagged.decision_map.as_dict() == plain.decision_map.as_dict()

"""The capture lifecycle: global state, intern counting, behavior neutrality."""

import pytest

from repro.obs import OBS, capture, span
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracing import NULL_SPAN, NULL_TRACER
from repro.topology.complex import SimplicialComplex
from repro.topology.interning import intern_table_stats
from repro.topology.standard_chromatic import standard_chromatic_subdivision
from repro.topology.vertex import vertices_of


def _base(n: int) -> SimplicialComplex:
    return SimplicialComplex.from_vertices(vertices_of(range(n + 1)))


class TestLifecycle:
    def test_disabled_by_default(self):
        assert OBS.enabled is False
        assert OBS.tracer is NULL_TRACER
        assert OBS.metrics is NULL_METRICS
        assert span("anything") is NULL_SPAN

    def test_capture_enables_and_restores(self):
        with capture() as session:
            assert OBS.enabled is True
            assert OBS.tracer is session.tracer
            assert OBS.metrics is session.metrics
        assert OBS.enabled is False
        assert OBS.tracer is NULL_TRACER

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with capture():
                raise RuntimeError("boom")
        assert OBS.enabled is False
        assert OBS.tracer is NULL_TRACER
        assert intern_table_stats() is None

    def test_captures_do_not_nest(self):
        with capture():
            with pytest.raises(RuntimeError, match="already active"):
                with capture():
                    pass

    def test_span_helper_uses_active_tracer(self):
        with capture() as session:
            with span("unit", x=1):
                pass
            (finished,) = session.tracer.spans
            assert finished.name == "unit" and finished.attrs == {"x": 1}


class TestInternCounting:
    def test_stats_live_only_inside_capture(self):
        assert intern_table_stats() is None
        with capture() as session:
            stats = intern_table_stats()
            assert stats is not None
            assert set(stats) == {"vertices", "simplices"}
            standard_chromatic_subdivision(_base(1))
            after = intern_table_stats()
            assert after["vertices"]["hits"] + after["vertices"]["misses"] > 0
        assert intern_table_stats() is None
        # The counters were flushed into the capture on exit.
        assert session.metrics.value("intern.misses", table="vertices") >= 0
        assert session.metrics.value("intern.size", table="vertices") > 0

    def test_interned_objects_survive_the_table_swap(self):
        from repro.topology.vertex import Vertex

        before = Vertex(0, "payload")
        with capture():
            during = Vertex(0, "payload")
            assert during is before  # entries were copied into the twin
        after = Vertex(0, "payload")
        assert after is before  # and copied back out


class TestBehaviorNeutrality:
    """A traced run must be byte-identical to an untraced one."""

    def test_sds_build_identical_under_capture(self):
        plain = standard_chromatic_subdivision(_base(2))
        with capture() as session:
            traced = standard_chromatic_subdivision(_base(2))
        assert traced.complex == plain.complex
        names = [s.name for s in session.tracer.spans]
        assert "sds.build" in names

    def test_solver_verdict_identical_under_capture(self):
        from repro.core.solvability import SearchOptions, solve_task
        from repro.tasks import set_consensus_task

        options = SearchOptions(kernel=True)
        plain = solve_task(set_consensus_task(3, 3), 1, options=options)
        with capture() as session:
            traced = solve_task(set_consensus_task(3, 3), 1, options=options)
        assert traced.status is plain.status
        assert traced.rounds == plain.rounds
        assert traced.decision_map.as_dict() == plain.decision_map.as_dict()
        assert session.metrics.value("kernel.searches") >= 1

    def test_scheduler_run_identical_under_capture(self):
        from repro.runtime.iterated import iis_full_information
        from repro.runtime.ops import Decide
        from repro.runtime.scheduler import RandomSchedule, Scheduler

        def factory(pid):
            def protocol():
                view = yield from iis_full_information(pid, f"v{pid}", 1)
                yield Decide(view)

            return protocol()

        def run():
            scheduler = Scheduler([factory, factory, factory], 3, record_events=True)
            result = scheduler.run(RandomSchedule(5))
            return result, {p.pid: p.steps for p in scheduler.processes.values()}

        plain, plain_steps = run()
        with capture() as session:
            traced, traced_steps = run()
        assert traced.decisions == plain.decisions
        assert traced.events == plain.events
        assert traced.steps == plain.steps
        assert traced_steps == plain_steps
        (run_span,) = session.tracer.spans_named("sched.run")
        assert run_span.attrs["steps"] == plain.steps
        for pid, count in plain_steps.items():
            assert session.metrics.value("sched.process.steps", pid=pid) == count

    def test_explorer_outcomes_identical_under_capture(self):
        from repro.mc.explorer import ExploreOptions, explore
        from repro.mc.scenario import EmulationScenario

        scenario = EmulationScenario(processes=2, k=1)
        options = ExploreOptions(stop_on_violation=False)
        plain = explore(scenario, options)
        with capture() as session:
            traced = explore(scenario, options)
        assert traced.outcomes == plain.outcomes
        assert traced.stats.executions == plain.stats.executions
        assert traced.stats.frontier_peak == plain.stats.frontier_peak
        assert session.metrics.value("mc.executions") == plain.stats.executions
        assert (
            session.metrics.value("mc.frontier.peak") == plain.stats.frontier_peak
        )

"""JSONL export: schema validity, round-trip, strict rejection of garbage."""

import json

import pytest

from repro.obs import capture
from repro.obs.export import (
    SCHEMA,
    SchemaError,
    capture_to_jsonl,
    load_capture_jsonl,
    validate_record,
)
from repro.topology.complex import SimplicialComplex
from repro.topology.standard_chromatic import standard_chromatic_subdivision
from repro.topology.vertex import vertices_of


def _traced_build():
    with capture() as session:
        base = SimplicialComplex.from_vertices(vertices_of(range(2)))
        standard_chromatic_subdivision(base)
    return session


class TestRoundTrip:
    def test_every_line_is_schema_valid(self):
        text = capture_to_jsonl(_traced_build(), label="unit")
        for line_number, line in enumerate(text.splitlines(), start=1):
            validate_record(json.loads(line), line_number)

    def test_meta_record_comes_first(self):
        text = capture_to_jsonl(_traced_build(), label="unit")
        first = json.loads(text.splitlines()[0])
        assert first["type"] == "meta"
        assert first["schema"] == SCHEMA
        assert first["label"] == "unit"

    def test_load_reconstructs_spans_and_metrics(self):
        session = _traced_build()
        document = load_capture_jsonl(capture_to_jsonl(session))
        assert len(document.spans) == len(session.tracer.spans)
        assert len(document.metrics) == len(list(session.metrics.series()))
        assert "sds.build" in document.span_names()
        counters = document.counters()
        assert any(name.startswith("intern.misses") for name in counters)

    def test_profile_records_export_and_validate(self):
        with capture(profile=True) as session:
            base = SimplicialComplex.from_vertices(vertices_of(range(2)))
            standard_chromatic_subdivision(base)
        assert session.profiler.records, "profiled('sds.build') never fired"
        document = load_capture_jsonl(capture_to_jsonl(session))
        assert len(document.profiles) == len(session.profiler.records)
        names = {profile["name"] for profile in document.profiles}
        assert "sds.build" in names
        for profile in document.profiles:
            assert profile["entries"], "profile exported with no stat entries"

    def test_profiler_stays_off_without_the_flag(self):
        session = _traced_build()
        assert session.profiler.records == []


class TestRejection:
    def test_not_json(self):
        with pytest.raises(SchemaError, match="line 2: not valid JSON"):
            load_capture_jsonl(
                '{"type": "meta", "schema": "%s"}\n{nope\n' % SCHEMA
            )

    def test_unknown_record_type(self):
        with pytest.raises(SchemaError, match="unknown record type 'event'"):
            validate_record({"type": "event"}, line=3)

    def test_missing_span_field(self):
        record = {"type": "span", "name": "x"}
        with pytest.raises(SchemaError, match="span record missing 'span_id'"):
            validate_record(record, line=7)

    def test_wrongly_typed_span_field(self):
        record = {
            "type": "span",
            "name": "x",
            "span_id": "one",
            "parent_id": None,
            "start_ns": 0,
            "duration_ns": 0,
            "attrs": {},
        }
        with pytest.raises(SchemaError, match="span.span_id has type str"):
            validate_record(record)

    def test_negative_duration(self):
        record = {
            "type": "span",
            "name": "x",
            "span_id": 1,
            "parent_id": None,
            "start_ns": 0,
            "duration_ns": -5,
            "attrs": {},
        }
        with pytest.raises(SchemaError, match="duration_ns is negative"):
            validate_record(record)

    def test_bad_metric_kind(self):
        record = {"type": "metric", "kind": "summary", "name": "x", "labels": {}}
        with pytest.raises(SchemaError, match="unknown metric kind 'summary'"):
            validate_record(record)

    def test_non_numeric_counter_value(self):
        record = {
            "type": "metric",
            "kind": "counter",
            "name": "x",
            "labels": {},
            "value": "many",
        }
        with pytest.raises(SchemaError, match="counter value must be numeric"):
            validate_record(record)

    def test_wrong_schema_version(self):
        with pytest.raises(SchemaError, match="meta.schema"):
            validate_record({"type": "meta", "schema": "repro-obs-v0"})

    def test_document_without_meta(self):
        span_line = json.dumps(
            {
                "type": "span",
                "name": "x",
                "span_id": 1,
                "parent_id": None,
                "start_ns": 0,
                "duration_ns": 0,
                "attrs": {},
            }
        )
        with pytest.raises(SchemaError, match="no meta record"):
            load_capture_jsonl(span_line + "\n")

"""The metrics registry: counters, gauges, histograms, labeled series."""

import pytest

from repro.obs.metrics import NULL_METRICS, MetricsRegistry


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.value("hits") == 5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("hits").inc(-1)

    def test_labels_fan_out_into_series(self):
        registry = MetricsRegistry()
        registry.counter("actions", kind="step").inc(3)
        registry.counter("actions", kind="crash").inc()
        assert registry.value("actions", kind="step") == 3
        assert registry.value("actions", kind="crash") == 1
        assert registry.value("actions") is None  # unlabeled is distinct


class TestGauges:
    def test_set_add_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.add(-2)
        assert registry.value("depth") == 3
        gauge.max(10)
        gauge.max(7)  # not a new high-water mark
        assert registry.value("depth") == 10


class TestHistograms:
    def test_streaming_aggregates(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (0.5e-6, 2e-3, 0.5, 20.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.min == 0.5e-6
        assert histogram.max == 20.0
        assert histogram.mean == pytest.approx(histogram.sum / 4)
        assert sum(histogram.buckets) == 4  # every observation lands once

    def test_empty_histogram_snapshot_has_null_extrema(self):
        snapshot = MetricsRegistry().histogram("empty").snapshot()
        assert snapshot["value"]["count"] == 0
        assert snapshot["value"]["min"] is None
        assert snapshot["value"]["max"] is None


class TestRegistry:
    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_series_order_is_deterministic(self):
        def build(order):
            registry = MetricsRegistry()
            for name, labels in order:
                registry.counter(name, **labels).inc()
            return [(s.name, s.labels) for s in registry.series()]

        creation_a = [("b", {}), ("a", {"x": 1}), ("a", {"x": 0})]
        creation_b = list(reversed(creation_a))
        assert build(creation_a) == build(creation_b)

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.clear()
        assert registry.value("x") is None
        assert list(registry.series()) == []


class TestNullMetrics:
    def test_swallows_every_mutation(self):
        series = NULL_METRICS.counter("x", any_label=1)
        series.inc(100)
        series.set(5)
        series.observe(1.0)
        assert NULL_METRICS.value("x", any_label=1) is None
        assert list(NULL_METRICS.series()) == []

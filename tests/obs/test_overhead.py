"""The null backend must stay off the hot path: <2% overhead on e2.build.n2_b2.

Raw A/B wall-clock comparison of a sub-millisecond build is hopelessly noisy
in CI, so the bound is established structurally instead: with observability
disabled the ONLY cost the layer adds is ``_OBS.enabled`` flag reads at
instrumentation boundaries.  We count those reads exactly (by swapping
``OBS.__class__`` to a twin whose ``enabled`` is a counting property — a
data descriptor shadows the instance attribute, which is why ``ObsState``
is deliberately not slotted), measure the real per-read cost of the plain
attribute, and assert ``reads * cost_per_read < 2% * build_time``.
"""

import time

from repro.obs import OBS, ObsState
from repro.topology.complex import SimplicialComplex
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
)
from repro.topology.vertex import Vertex
from repro.topology.simplex import Simplex


def _build_n2_b2():
    base = SimplicialComplex(
        [Simplex(Vertex(pid, f"v{pid}") for pid in range(3))]
    )
    return iterated_standard_chromatic_subdivision(base, 2)


class _FlagReadCounter(ObsState):
    reads = 0

    @property
    def enabled(self):  # shadows the instance attribute set by __init__
        _FlagReadCounter.reads += 1
        return False


def _count_flag_reads(workload) -> int:
    assert OBS.enabled is False, "cannot count reads inside an active capture"
    original_class = OBS.__class__
    _FlagReadCounter.reads = 0
    OBS.__class__ = _FlagReadCounter
    try:
        workload()
    finally:
        OBS.__class__ = original_class
    return _FlagReadCounter.reads


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best


def test_disabled_path_is_only_flag_reads_and_under_two_percent():
    sds = _build_n2_b2()  # warm the intern/memo caches, as the bench does
    assert len(sds.complex.maximal_simplices) == 169

    reads = _count_flag_reads(_build_n2_b2)
    # The instrumented boundaries are coarse (per build/search/run, never
    # per simplex), so the count must stay small in absolute terms too.
    assert 0 < reads < 500, f"instrumentation leaked into a per-item loop: {reads} flag reads"

    build_seconds = _best_of(_build_n2_b2, 5)

    probe = ObsState()
    n_probe = 100_000
    def read_loop():
        for _ in range(n_probe):
            probe.enabled
    seconds_per_read = _best_of(read_loop, 3) / n_probe

    overhead = reads * seconds_per_read
    budget = 0.02 * build_seconds
    assert overhead < budget, (
        f"{reads} flag reads x {seconds_per_read * 1e9:.1f}ns = "
        f"{overhead * 1e6:.2f}us exceeds 2% of the {build_seconds * 1e3:.3f}ms "
        f"e2.build.n2_b2 build ({budget * 1e6:.2f}us)"
    )


def test_class_swap_counter_sees_reads():
    """Guard the counting technique itself: a known workload counts as expected."""

    def three_checks():
        for _ in range(3):
            OBS.enabled

    assert _count_flag_reads(three_checks) == 3
    # And the swap is fully undone.
    assert type(OBS) is ObsState
    assert OBS.enabled is False

"""The span tracer: nesting, attributes, hot-path recording, null backend."""

import pytest

from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullSpan, Tracer


class TestSpans:
    def test_span_times_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            span.set(result=7)
        (finished,) = tracer.spans
        assert finished is span
        assert finished.name == "work"
        assert finished.attrs == {"size": 3, "result": 7}
        assert finished.duration_ns >= 0
        assert finished.end_ns >= finished.start_ns > 0

    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        # Completion order: inner closes first.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert tracer.children_of(outer) == [inner]

    def test_record_is_a_completed_child_of_the_open_span(self):
        import time

        tracer = Tracer()
        with tracer.span("run") as run:
            start = time.perf_counter_ns()
            recorded = tracer.record("step", start, pid=0)
        assert recorded.parent_id == run.span_id
        assert recorded.attrs == {"pid": 0}
        assert recorded.start_ns == start
        assert recorded.end_ns >= start

    def test_exception_is_recorded_and_span_still_finishes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (finished,) = tracer.spans
        assert finished.attrs["error"] == "ValueError"
        assert finished.end_ns >= finished.start_ns

    def test_span_ids_are_sequential(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [s.span_id for s in tracer.spans]
        assert ids == sorted(ids) and len(set(ids)) == 2

    def test_spans_named_and_clear(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("x"):
                pass
        with tracer.span("y"):
            pass
        assert len(list(tracer.spans_named("x"))) == 3
        tracer.clear()
        assert tracer.spans == []


class TestNullBackend:
    def test_null_tracer_returns_the_shared_null_span(self):
        span = NULL_TRACER.span("anything", attr=1)
        assert span is NULL_SPAN
        assert isinstance(span, NullSpan)
        with span as entered:
            entered.set(ignored=True)
        assert NULL_TRACER.spans == []
        assert list(NULL_TRACER.spans_named("anything")) == []

    def test_null_span_keeps_no_state(self):
        NULL_SPAN.set(a=1)
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.duration_ns == 0

"""Adversarial schedules: starvation and maximal contention."""

from repro.core.emulation import EmulationHarness
from repro.runtime.adversary import MaxContentionSchedule, StarvationSchedule
from repro.runtime.iterated import run_iis_full_information
from repro.runtime.ops import Decide, WriteCell
from repro.runtime.scheduler import Scheduler


def writer(pid):
    def protocol():
        for _ in range(3):
            yield WriteCell("r", pid)
        yield Decide(pid)

    return protocol()


class TestStarvation:
    def test_victim_finishes_last_but_finishes(self):
        schedule = StarvationSchedule(victim=0)
        scheduler = Scheduler([writer, writer, writer], 3, record_events=True)
        result = scheduler.run(schedule)
        assert set(result.decisions) == {0, 1, 2}
        # Victim's actions all come after everyone else is done.
        victim_times = [
            e.time for e in result.events if getattr(e.action, "pid", None) == 0
        ]
        other_times = [
            e.time for e in result.events if getattr(e.action, "pid", None) != 0
        ]
        assert min(victim_times) > max(other_times)

    def test_starved_emulator_pays_more_memories(self):
        fair = EmulationHarness({0: "a", 1: "b", 2: "c"}, 2)
        fair_trace = fair.run()
        starved = EmulationHarness({0: "a", 1: "b", 2: "c"}, 2)
        starved_trace = starved.run(StarvationSchedule(victim=0))
        starved_trace.check_legality()

        def victim_cost(trace):
            return sum(c for pid, _k, c in trace.memories_per_op if pid == 0)

        # The victim emulator still finishes (non-blocking + bounded k) …
        assert 0 in starved_trace.final_states
        # … the adversary cannot even hurt it here: scheduled last, it runs
        # effectively solo on fresh memories.  The point is termination.
        assert victim_cost(starved_trace) >= 1

    def test_wait_freedom_under_starvation(self):
        # Starving any victim never blocks the others or the victim.
        for victim in range(3):
            harness = EmulationHarness({0: 0, 1: 1, 2: 2}, 2)
            trace = harness.run(StarvationSchedule(victim))
            trace.check_legality()
            assert len(trace.final_states) == 3


class TestMaxContention:
    def test_single_block_execution(self):
        views = run_iis_full_information(
            {0: "a", 1: "b", 2: "c"}, 1, MaxContentionSchedule()
        )
        # Everyone in one concurrency class: identical full views.
        assert len({frozenset(v) for v in views.values()}) == 1
        assert len(next(iter(views.values()))) == 3

    def test_iterated_stays_central(self):
        views = run_iis_full_information(
            {0: "a", 1: "b"}, 3, MaxContentionSchedule()
        )
        assert views[0] == views[1]

    def test_emulation_under_max_contention(self):
        harness = EmulationHarness({0: "a", 1: "b", 2: "c"}, 2)
        trace = harness.run(MaxContentionSchedule())
        trace.check_legality()
        assert len(trace.final_states) == 3

    def test_max_contention_commits_single_blocks(self):
        from repro.analysis.narrate import summarize_block_structure
        from repro.runtime.iterated import iis_full_information

        def factory_for(pid):
            def factory(p):
                def protocol():
                    view = yield from iis_full_information(p, f"v{p}", 2)
                    yield Decide(view)

                return protocol()

            return factory

        scheduler = Scheduler(
            {pid: factory_for(pid) for pid in range(3)}, 3, record_events=True
        )
        result = scheduler.run(MaxContentionSchedule())
        # Maximal contention = one concurrency class per memory: every
        # ordered partition is the trivial single-block one.
        for blocks in summarize_block_structure(result).values():
            assert len(blocks) == 1
            assert set(blocks[0]) == {0, 1, 2}


class TestAdversariesAtScale:
    def test_both_adversaries_stay_legal_at_four_processes(self):
        for make in (lambda: StarvationSchedule(victim=1), MaxContentionSchedule):
            harness = EmulationHarness({pid: f"v{pid}" for pid in range(4)}, 2)
            trace = harness.run(make())
            trace.check_legality()
            assert len(trace.final_states) == 4  # wait-free: everyone finishes

"""E11: atomic snapshots implemented from single-cell reads (Afek et al. [1]).

The implemented object must be indistinguishable from the primitive
snapshot: every run passes the legality checker, and for small instances
the *set of reachable outcomes* of the full-information protocol matches
the primitive-snapshot runtime exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.adversary import StarvationSchedule
from repro.runtime.afek_snapshot import (
    AfekHarness,
    AfekSnapshotMemory,
    afek_scan,
    afek_update,
)
from repro.runtime.full_information import k_shot_full_information
from repro.runtime.ops import Decide
from repro.runtime.scheduler import (
    RandomSchedule,
    RoundRobinSchedule,
    Scheduler,
    enumerate_executions,
)


class TestScanBasics:
    def test_solo_scan_sees_empty(self):
        def factory(pid):
            def protocol():
                view = yield from afek_scan("afek-snapshot", 2)
                yield Decide(view)

            return protocol()

        scheduler = Scheduler({0: factory}, 2)
        result = scheduler.run(RoundRobinSchedule())
        assert result.decisions[0] == ((None, 0), (None, 0))

    def test_update_then_scan(self):
        def factory(pid):
            def protocol():
                yield from afek_update(pid, "afek-snapshot", f"v{pid}", 2)
                view = yield from afek_scan("afek-snapshot", 2)
                yield Decide(view)

            return protocol()

        scheduler = Scheduler({0: factory, 1: factory}, 2)
        result = scheduler.run(RoundRobinSchedule())
        for pid, view in result.decisions.items():
            assert view[pid] == (f"v{pid}", 1)

    def test_memory_wrapper_vector(self):
        def factory(pid):
            def protocol():
                memory = AfekSnapshotMemory(pid, 2)
                yield from memory.write("x")
                values, vector = yield from memory.snapshot()
                yield Decide((values, vector))

            return protocol()

        scheduler = Scheduler({0: factory}, 2)
        result = scheduler.run(RoundRobinSchedule())
        values, vector = result.decisions[0]
        assert values[0] == "x" and vector[0] == 1


class TestLegality:
    def test_round_robin(self):
        trace = AfekHarness({0: "a", 1: "b", 2: "c"}, 2).run(RoundRobinSchedule())
        trace.check_legality()
        assert len(trace.final_states) == 3

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_schedules(self, seed):
        trace = AfekHarness({0: 0, 1: 1, 2: 2}, 2).run(RandomSchedule(seed))
        trace.check_legality()

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sets(st.integers(0, 2), max_size=2),
    )
    def test_crashy_schedules(self, seed, crash):
        trace = AfekHarness({0: 0, 1: 1, 2: 2}, 2).run(
            RandomSchedule(seed, crash_pids=sorted(crash))
        )
        trace.check_legality()
        assert len(trace.final_states) >= 3 - len(crash)

    def test_starvation_schedule(self):
        trace = AfekHarness({0: "a", 1: "b", 2: "c"}, 2).run(
            StarvationSchedule(victim=1)
        )
        trace.check_legality()
        assert len(trace.final_states) == 3

    def test_wait_free_bound(self):
        # A scan finishes within n + 2 collects: n*(n+2) reads; the whole
        # k-round run is comfortably bounded.
        n, k = 3, 2
        trace = AfekHarness({pid: pid for pid in range(n)}, k).run(
            RandomSchedule(5), max_steps=n * k * 2 * (n + 2) * n + 100
        )
        trace.check_legality()


class TestEquivalenceWithPrimitive:
    def test_outcome_sets_match_primitive_snapshot(self):
        """n=2, k=1: outcomes through the implemented object are exactly
        the primitive-snapshot outcomes.

        The primitive side is enumerated exhaustively (cheap: 4 operations).
        The Afek side has ~26 register operations per run — full enumeration
        takes minutes — so it is *sampled* over 200 seeded schedules and
        checked for (a) containment in the primitive set (it IS an atomic
        snapshot) and (b) full coverage (every primitive behaviour is
        realizable through the implementation).
        """

        def primitive_factory(pid, value):
            def make(p):
                def protocol():
                    view = yield from k_shot_full_information(p, value, 1)
                    yield Decide(view)

                return protocol()

            return make

        primitive_outcomes = {
            tuple(sorted(r.decisions.items()))
            for r in enumerate_executions(
                {0: primitive_factory(0, "a"), 1: primitive_factory(1, "b")}, 2
            )
        }

        def afek_factory(pid, value):
            def make(p):
                def protocol():
                    memory = AfekSnapshotMemory(p, 2)
                    yield from memory.write(value)
                    values, _vector = yield from memory.snapshot()
                    yield Decide(values)

                return protocol()

            return make

        factories = {0: afek_factory(0, "a"), 1: afek_factory(1, "b")}
        afek_outcomes = set()
        for seed in range(200):
            scheduler = Scheduler(factories, 2)
            result = scheduler.run(RandomSchedule(seed), max_steps=10_000)
            afek_outcomes.add(tuple(sorted(result.decisions.items())))
        assert afek_outcomes <= primitive_outcomes
        assert afek_outcomes == primitive_outcomes  # all 3 behaviours reached

"""Figure 1 (k-shot atomic snapshot full-information protocol) tests."""

from hypothesis import given, settings, strategies as st

from repro.runtime.full_information import (
    k_shot_decision_protocol,
    k_shot_full_information,
    run_k_shot,
)
from repro.runtime.ops import Decide
from repro.runtime.scheduler import (
    RandomSchedule,
    RoundRobinSchedule,
    Scheduler,
    enumerate_executions,
)


class TestKShot:
    def test_one_round_round_robin(self):
        states = run_k_shot({0: "a", 1: "b"}, 1)
        # Both writes land before both snapshots under round robin.
        assert states == {0: ("a", "b"), 1: ("a", "b")}

    def test_full_information_accumulates(self):
        states = run_k_shot({0: "a", 1: "b"}, 2)
        # After round 2 the state is a snapshot of round-1 states.
        assert states[0] == (("a", "b"), ("a", "b"))

    def test_solo_process(self):
        states = run_k_shot({0: "a"}, 3)
        assert states[0] == ((("a",),),)

    def test_decision_protocol(self):
        def decide(pid, view):
            return sum(1 for cell in view if cell is not None)

        factories = {
            p: (lambda q, p=p: k_shot_decision_protocol(q, p, 1, decide))
            for p in range(3)
        }
        s = Scheduler(factories, 3)
        result = s.run(RoundRobinSchedule())
        assert result.decisions == {0: 3, 1: 3, 2: 3}

    def test_all_interleavings_one_round_two_processes(self):
        def factory(pid, value):
            def make(p):
                def protocol():
                    view = yield from k_shot_full_information(p, value, 1)
                    yield Decide(view)

                return protocol()

            return make

        factories = {0: factory(0, "a"), 1: factory(1, "b")}
        outcomes = set()
        for result in enumerate_executions(factories, 2):
            outcomes.add(tuple(sorted(result.decisions.items())))
            # Self-inclusion: every process sees its own write.
            for pid, view in result.decisions.items():
                assert view[pid] == ("a", "b")[pid]
        # Snapshot-after-write: 6 interleavings, distinct outcomes: each
        # process either sees the other or not, minus the impossible
        # "neither sees the other".
        assert len(outcomes) == 3

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32), st.integers(1, 3))
    def test_random_schedules_self_inclusion(self, seed, k):
        states = run_k_shot({0: "a", 1: "b", 2: "c"}, k, RandomSchedule(seed))
        assert set(states) == {0, 1, 2}
        for pid, view in states.items():
            assert view is not None
            assert len(view) == 3

"""Immediate snapshot: both engines satisfy the Section 3.5 axioms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.immediate_snapshot import (
    OneShotISMemory,
    check_immediate_snapshot_axioms,
    levels_immediate_snapshot,
)
from repro.runtime.ops import Decide
from repro.runtime.scheduler import (
    RandomSchedule,
    RoundRobinSchedule,
    Scheduler,
    enumerate_executions,
)


def levels_factory(pid, value, n):
    def factory(p):
        def protocol():
            view = yield from levels_immediate_snapshot(p, value, "is", n)
            yield Decide(view)

        return protocol()

    return factory


class TestOracleMemory:
    def test_single_block(self):
        m = OneShotISMemory(0)
        view = m.commit_block([(0, "a"), (1, "b")])
        assert view == frozenset({(0, "a"), (1, "b")})
        assert m.participants == frozenset({0, 1})
        assert m.blocks == (frozenset({0, 1}),)

    def test_cumulative_views(self):
        m = OneShotISMemory(0)
        first = m.commit_block([(1, "b")])
        second = m.commit_block([(0, "a"), (2, "c")])
        assert first < second
        assert second == frozenset({(0, "a"), (1, "b"), (2, "c")})

    def test_rewrite_rejected(self):
        m = OneShotISMemory(0)
        m.commit_block([(0, "a")])
        with pytest.raises(ValueError, match="twice"):
            m.commit_block([(0, "again")])

    def test_duplicate_in_block_rejected(self):
        m = OneShotISMemory(0)
        with pytest.raises(ValueError):
            m.commit_block([(0, "a"), (0, "b")])

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            OneShotISMemory(0).commit_block([])

    def test_axioms_for_every_ordered_partition(self):
        from repro.topology.standard_chromatic import ordered_set_partitions

        for partition in ordered_set_partitions([0, 1, 2]):
            m = OneShotISMemory(0)
            views = {}
            for block in partition:
                view = m.commit_block([(pid, f"v{pid}") for pid in sorted(block)])
                for pid in block:
                    views[pid] = view
            check_immediate_snapshot_axioms(views)


class TestLevelsAlgorithm:
    def test_solo_run_sees_self_only(self):
        s = Scheduler({0: levels_factory(0, "x", 2)}, 2)
        result = s.run(RoundRobinSchedule())
        assert result.decisions[0] == frozenset({(0, "x")})

    def test_axioms_all_interleavings_two_processes(self):
        factories = {p: levels_factory(p, f"v{p}", 2) for p in range(2)}
        outcomes = set()
        for result in enumerate_executions(factories, 2):
            check_immediate_snapshot_axioms(dict(result.decisions))
            outcomes.add(tuple(sorted(result.decisions.items())))
        assert len(outcomes) == 3  # the 3 ordered partitions of {0, 1}

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_axioms_random_schedules_three_processes(self, seed):
        factories = {p: levels_factory(p, f"v{p}", 3) for p in range(3)}
        s = Scheduler(factories, 3)
        result = s.run(RandomSchedule(seed))
        check_immediate_snapshot_axioms(dict(result.decisions))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_axioms_random_schedules_five_processes(self, seed):
        factories = {p: levels_factory(p, f"v{p}", 5) for p in range(5)}
        s = Scheduler(factories, 5)
        result = s.run(RandomSchedule(seed))
        check_immediate_snapshot_axioms(dict(result.decisions))

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sets(st.integers(0, 2), max_size=2),
    )
    def test_crashed_runs_leave_survivors_with_valid_views(self, seed, crash):
        factories = {p: levels_factory(p, f"v{p}", 3) for p in range(3)}
        s = Scheduler(factories, 3)
        result = s.run(RandomSchedule(seed, crash_pids=sorted(crash)))
        # Axioms restricted to deciders: still must hold among themselves.
        deciders = dict(result.decisions)
        if deciders:
            for pid, view in deciders.items():
                assert (pid, f"v{pid}") in view
            values = sorted(deciders.values(), key=len)
            for a, b in zip(values, values[1:]):
                assert a <= b

    def test_wait_free_step_bound(self):
        # The levels algorithm descends at most n levels: with n processes,
        # each does at most 2n register operations.
        factories = {p: levels_factory(p, p, 4) for p in range(4)}
        s = Scheduler(factories, 4)
        result = s.run(RoundRobinSchedule())
        assert result.steps <= 4 * (2 * 4) + 4


class TestAxiomChecker:
    def test_detects_missing_self(self):
        with pytest.raises(AssertionError):
            check_immediate_snapshot_axioms({0: frozenset({(1, "b")})})

    def test_detects_incomparable(self):
        views = {
            0: frozenset({(0, "a")}),
            1: frozenset({(1, "b")}),
        }
        with pytest.raises(AssertionError, match="comparability"):
            check_immediate_snapshot_axioms(views)

    def test_detects_knowledge_violation(self):
        legal = {
            0: frozenset({(0, "a"), (2, "c")}),
            1: frozenset({(1, "b"), (0, "a"), (2, "c")}),
            2: frozenset({(2, "c")}),
        }
        check_immediate_snapshot_axioms(legal)
        # Knowledge violation with comparability intact: 1 sees 0, yet
        # S_0 ⊋ S_1 (0 "knew more" than a processor that observed it).
        bad = {
            0: frozenset({(0, "a"), (1, "b"), (2, "c")}),
            1: frozenset({(0, "a"), (1, "b")}),
        }
        with pytest.raises(AssertionError, match="knowledge"):
            check_immediate_snapshot_axioms(bad)

    def test_accepts_legal_chain(self):
        views = {
            0: frozenset({(0, "a")}),
            1: frozenset({(0, "a"), (1, "b")}),
            2: frozenset({(0, "a"), (1, "b"), (2, "c")}),
        }
        check_immediate_snapshot_axioms(views)

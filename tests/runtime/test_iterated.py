"""IIS full-information runtime tests (Lemma 3.3's operational side)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.iterated import (
    iis_decision_protocol,
    iis_full_information,
    participants_of_view,
    run_iis_full_information,
    unfold_view,
)
from repro.runtime.scheduler import (
    RandomSchedule,
    RoundRobinSchedule,
    Scheduler,
)


class TestFullInformation:
    def test_zero_rounds_returns_input(self):
        views = run_iis_full_information({0: "a", 1: "b"}, 0)
        assert views == {0: "a", 1: "b"}

    def test_one_round_solo_first(self):
        # Round robin schedules P0 first in every memory: it sees only itself.
        views = run_iis_full_information({0: "a", 1: "b"}, 1)
        assert views[0] == frozenset({(0, "a")})
        assert views[1] == frozenset({(0, "a"), (1, "b")})

    def test_participants_of_view(self):
        views = run_iis_full_information({0: "a", 1: "b"}, 1)
        assert participants_of_view(views[1]) == frozenset({0, 1})

    def test_participants_rejects_round_zero_state(self):
        with pytest.raises(ValueError):
            participants_of_view("plain-input")

    def test_unfold_recovers_input(self):
        views = run_iis_full_information({0: "a", 1: "b"}, 3)
        # P0 runs first every round; its nested view bottoms out at its input.
        assert unfold_view(views[0], 3) == "a"

    def test_unfold_too_deep_raises(self):
        views = run_iis_full_information({0: "a"}, 1)
        with pytest.raises(ValueError):
            unfold_view(views[0], 5)

    def test_decision_protocol(self):
        def decide(pid, view):
            return len(view)

        factories = {
            p: (lambda q, p=p: iis_decision_protocol(q, f"v{p}", 2, decide))
            for p in range(2)
        }
        s = Scheduler(factories, 2)
        result = s.run(RoundRobinSchedule())
        assert result.decisions == {0: 1, 1: 2}

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32), st.integers(1, 3))
    def test_views_nest_consistently(self, seed, rounds):
        views = run_iis_full_information(
            {0: "a", 1: "b", 2: "c"}, rounds, RandomSchedule(seed)
        )
        for pid, view in views.items():
            assert isinstance(view, frozenset)
            assert pid in participants_of_view(view)
            # Every member is a (pid, round-(r-1) state) pair.
            for other_pid, inner in view:
                assert 0 <= other_pid <= 2
                if rounds > 1:
                    assert isinstance(inner, frozenset)
                else:
                    assert inner in ("a", "b", "c")

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_final_round_views_comparable(self, seed):
        """Final views of one round are IS views: totally ordered by content.

        Comparability only binds *within* a round, so check round 1.
        """
        views = run_iis_full_information({0: "a", 1: "b", 2: "c"}, 1, RandomSchedule(seed))
        ordered = sorted(views.values(), key=len)
        for a, b in zip(ordered, ordered[1:]):
            assert a <= b

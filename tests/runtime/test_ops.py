"""Operation vocabulary: hashability, equality, transcript-friendliness."""

from repro.runtime.ops import (
    Decide,
    ReadCell,
    SnapshotRegion,
    WriteCell,
    WriteReadIS,
)


class TestEquality:
    def test_write_cell(self):
        assert WriteCell("r", 1) == WriteCell("r", 1)
        assert WriteCell("r", 1) != WriteCell("r", 2)
        assert WriteCell("r", 1) != WriteCell("other", 1)

    def test_snapshot_region(self):
        assert SnapshotRegion("r") == SnapshotRegion("r")
        assert SnapshotRegion("r") != SnapshotRegion("s")

    def test_read_cell(self):
        assert ReadCell("r", 0) == ReadCell("r", 0)
        assert ReadCell("r", 0) != ReadCell("r", 1)

    def test_writeread(self):
        assert WriteReadIS(0, "x") == WriteReadIS(0, "x")
        assert WriteReadIS(0, "x") != WriteReadIS(1, "x")

    def test_decide(self):
        assert Decide(None) == Decide(None)
        assert Decide(1) != Decide(2)


class TestHashability:
    def test_all_ops_usable_in_sets(self):
        operations = {
            WriteCell("r", 1),
            SnapshotRegion("r"),
            ReadCell("r", 0),
            WriteReadIS(0, frozenset({(0, "a")})),
            Decide("value"),
        }
        assert len(operations) == 5

    def test_nested_hashable_values(self):
        view = frozenset({(0, frozenset({(1, "deep")}))})
        op = WriteReadIS(3, view)
        assert hash(op) == hash(WriteReadIS(3, view))


class TestRepr:
    def test_reprs_are_informative(self):
        assert "r" in repr(WriteCell("r", 1))
        assert "3" in repr(WriteReadIS(3, "x"))
        assert "cell=2" in repr(ReadCell("r", 2))

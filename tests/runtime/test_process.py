"""Process lifecycle tests."""

import pytest

from repro.runtime.ops import Decide, WriteCell
from repro.runtime.process import Process, ProcessState


def make(gen_fn):
    p = Process(0, gen_fn())
    p.start()
    return p


class TestLifecycle:
    def test_decide_via_yield(self):
        def protocol():
            yield Decide(42)

        p = make(protocol)
        assert p.has_decided
        assert p.decision == 42
        assert p.pending is None

    def test_decide_via_return(self):
        def protocol():
            return 7
            yield  # pragma: no cover — makes this a generator

        p = make(protocol)
        assert p.has_decided
        assert p.decision == 7

    def test_pending_operation(self):
        def protocol():
            yield WriteCell("r", 1)
            yield Decide(None)

        p = make(protocol)
        assert p.is_running
        assert p.pending == WriteCell("r", 1)
        p.resume(None)
        assert p.has_decided

    def test_resume_delivers_result(self):
        seen = []

        def protocol():
            result = yield WriteCell("r", 1)
            seen.append(result)
            yield Decide(None)

        p = make(protocol)
        p.resume("the-result")
        assert seen == ["the-result"]

    def test_crash(self):
        def protocol():
            yield WriteCell("r", 1)
            yield Decide(None)  # pragma: no cover

        p = make(protocol)
        p.crash()
        assert p.state is ProcessState.CRASHED
        assert p.pending is None
        with pytest.raises(RuntimeError):
            p.resume(None)

    def test_crash_after_decide_is_noop(self):
        def protocol():
            yield Decide(1)

        p = make(protocol)
        p.crash()
        assert p.state is ProcessState.DECIDED

    def test_resume_after_decide_rejected(self):
        def protocol():
            yield Decide(1)

        p = make(protocol)
        with pytest.raises(RuntimeError):
            p.resume(None)

    def test_steps_counted(self):
        def protocol():
            yield WriteCell("r", 1)
            yield WriteCell("r", 2)
            yield Decide(None)

        p = make(protocol)
        p.resume(None)
        p.resume(None)
        assert p.steps == 3

    def test_exception_in_protocol_propagates(self):
        def protocol():
            yield WriteCell("r", 1)
            raise RuntimeError("bug in protocol")

        p = make(protocol)
        with pytest.raises(RuntimeError, match="bug in protocol"):
            p.resume(None)

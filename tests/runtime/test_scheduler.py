"""Scheduler semantics: serialization, blocks, crashes, enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.ops import Decide, SnapshotRegion, WriteCell, WriteReadIS
from repro.runtime.scheduler import (
    BlockAction,
    CrashAction,
    RandomSchedule,
    RoundRobinSchedule,
    Scheduler,
    SchedulerError,
    StepAction,
    enumerate_executions,
)


def writer_reader(pid):
    """Write own pid, snapshot, decide the snapshot."""

    def protocol():
        yield WriteCell("r", pid)
        snap = yield SnapshotRegion("r")
        yield Decide(snap)

    return protocol()


def is_once(pid):
    def protocol():
        view = yield WriteReadIS(0, pid)
        yield Decide(view)

    return protocol()


class TestBasics:
    def test_round_robin_runs_to_completion(self):
        s = Scheduler([writer_reader, writer_reader], 2)
        result = s.run(RoundRobinSchedule())
        assert set(result.decisions) == {0, 1}
        # Round robin: both writes land before both snapshots.
        assert result.decisions[0] == (0, 1)
        assert result.decisions[1] == (0, 1)

    def test_empty_factories_rejected(self):
        with pytest.raises(ValueError):
            Scheduler([], 0)

    def test_subset_of_processes(self):
        s = Scheduler({1: writer_reader}, 3)
        result = s.run(RoundRobinSchedule())
        assert result.decisions[1] == (None, 1, None)

    def test_max_steps_guard(self):
        def spinner(pid):
            def protocol():
                while True:
                    yield WriteCell("r", pid)

            return protocol()

        s = Scheduler([spinner], 1)
        with pytest.raises(SchedulerError, match="not wait-free"):
            s.run(RoundRobinSchedule(), max_steps=10)

    def test_apply_step_to_finished_process_rejected(self):
        s = Scheduler([writer_reader], 1)
        s.run(RoundRobinSchedule())
        with pytest.raises(SchedulerError):
            s.apply(StepAction(0))

    def test_events_recorded_when_requested(self):
        s = Scheduler([writer_reader], 1, record_events=True)
        result = s.run(RoundRobinSchedule())
        assert len(result.events) == result.steps


class TestBlocks:
    def test_block_gives_common_view(self):
        s = Scheduler([is_once, is_once], 2)
        s.apply(BlockAction(0, (0, 1)))
        result = s.result()
        assert result.decisions[0] == result.decisions[1] == frozenset({(0, 0), (1, 1)})

    def test_sequential_blocks_nest(self):
        s = Scheduler([is_once, is_once], 2)
        s.apply(BlockAction(0, (1,)))
        s.apply(BlockAction(0, (0,)))
        result = s.result()
        assert result.decisions[1] == frozenset({(1, 1)})
        assert result.decisions[0] == frozenset({(0, 0), (1, 1)})

    def test_double_writeread_same_memory_rejected(self):
        def twice(pid):
            def protocol():
                yield WriteReadIS(0, "a")
                yield WriteReadIS(0, "b")
                yield Decide(None)

            return protocol()

        s = Scheduler([twice], 1)
        s.apply(BlockAction(0, (0,)))
        with pytest.raises(ValueError, match="twice"):
            s.apply(BlockAction(0, (0,)))

    def test_block_on_wrong_index_rejected(self):
        s = Scheduler([is_once], 1)
        with pytest.raises(SchedulerError):
            s.apply(BlockAction(7, (0,)))

    def test_empty_block_rejected(self):
        s = Scheduler([is_once], 1)
        with pytest.raises(SchedulerError):
            s.apply(BlockAction(0, ()))

    def test_block_with_register_pending_rejected(self):
        s = Scheduler([writer_reader], 1)
        with pytest.raises(SchedulerError):
            s.apply(BlockAction(0, (0,)))


class TestCrashes:
    def test_crash_stops_process(self):
        s = Scheduler([writer_reader, writer_reader], 2)
        s.apply(CrashAction(0))
        result = s.run(RoundRobinSchedule())
        assert result.crashed == frozenset({0})
        assert set(result.decisions) == {1}
        # Process 0 crashed before writing: invisible to process 1.
        assert result.decisions[1] == (None, 1)

    def test_crash_after_write_still_visible(self):
        s = Scheduler([writer_reader, writer_reader], 2)
        s.apply(StepAction(0))  # write of process 0 lands
        s.apply(CrashAction(0))
        result = s.run(RoundRobinSchedule())
        assert result.decisions[1] == (0, 1)

    def test_random_schedule_with_crashes_terminates(self):
        for seed in range(10):
            s = Scheduler([writer_reader, writer_reader, writer_reader], 3)
            result = s.run(RandomSchedule(seed, crash_pids=[2]))
            assert 1 <= len(result.decisions) <= 3


class TestEnumeration:
    def test_single_process_single_execution(self):
        results = list(enumerate_executions([writer_reader], 1))
        assert len(results) == 1

    def test_two_writer_readers_interleavings(self):
        results = list(enumerate_executions([writer_reader, writer_reader], 2))
        # 4 operations, two per process: C(4,2) = 6 interleavings.
        assert len(results) == 6
        outcomes = {tuple(sorted(r.decisions.items())) for r in results}
        # Snapshot contents distinguish: both-see-both, one-sees-one, ...
        assert len(outcomes) >= 3

    def test_is_enumeration_counts_ordered_partitions(self):
        results = list(enumerate_executions([is_once, is_once, is_once], 3))
        outcomes = {tuple(sorted(r.decisions.items())) for r in results}
        assert len(outcomes) == 13  # Fubini(3): Lemma 3.2 at the runtime level

    def test_enumeration_with_crashes(self):
        results = list(
            enumerate_executions([is_once, is_once], 2, max_crashes=1)
        )
        some_crashed = [r for r in results if r.crashed]
        assert some_crashed
        for r in some_crashed:
            # The survivor decided anyway: wait-freedom.
            assert len(r.decisions) + len(r.crashed) == 2

    def test_max_depth_guard(self):
        def chatty(pid):
            def protocol():
                for _ in range(50):
                    yield WriteCell("r", pid)
                yield Decide(None)

            return protocol()

        with pytest.raises(SchedulerError):
            list(enumerate_executions([chatty], 1, max_depth=10))

    def test_prune(self):
        results = list(
            enumerate_executions(
                [writer_reader, writer_reader], 2, prune=lambda s: True
            )
        )
        assert results == []  # pruned at the root before any completion


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run(seed):
            s = Scheduler([writer_reader, writer_reader, writer_reader], 3)
            return s.run(RandomSchedule(seed)).decisions

        for seed in range(5):
            assert run(seed) == run(seed)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_schedules_always_terminate(self, seed):
        s = Scheduler([writer_reader, writer_reader], 2)
        result = s.run(RandomSchedule(seed), max_steps=1000)
        assert set(result.decisions) == {0, 1}

"""Scheduler semantics: serialization, blocks, crashes, enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.ops import Decide, SnapshotRegion, WriteCell, WriteReadIS
from repro.runtime.scheduler import (
    BlockAction,
    CrashAction,
    RandomSchedule,
    RoundRobinSchedule,
    Scheduler,
    SchedulerError,
    SchedulerTimeout,
    StepAction,
    enumerate_executions,
)


def writer_reader(pid):
    """Write own pid, snapshot, decide the snapshot."""

    def protocol():
        yield WriteCell("r", pid)
        snap = yield SnapshotRegion("r")
        yield Decide(snap)

    return protocol()


def is_once(pid):
    def protocol():
        view = yield WriteReadIS(0, pid)
        yield Decide(view)

    return protocol()


class TestBasics:
    def test_round_robin_runs_to_completion(self):
        s = Scheduler([writer_reader, writer_reader], 2)
        result = s.run(RoundRobinSchedule())
        assert set(result.decisions) == {0, 1}
        # Round robin: both writes land before both snapshots.
        assert result.decisions[0] == (0, 1)
        assert result.decisions[1] == (0, 1)

    def test_empty_factories_rejected(self):
        with pytest.raises(ValueError):
            Scheduler([], 0)

    def test_subset_of_processes(self):
        s = Scheduler({1: writer_reader}, 3)
        result = s.run(RoundRobinSchedule())
        assert result.decisions[1] == (None, 1, None)

    def test_max_steps_guard(self):
        def spinner(pid):
            def protocol():
                while True:
                    yield WriteCell("r", pid)

            return protocol()

        s = Scheduler([spinner], 1)
        with pytest.raises(SchedulerError, match="not wait-free"):
            s.run(RoundRobinSchedule(), max_steps=10)

    def test_apply_step_to_finished_process_rejected(self):
        s = Scheduler([writer_reader], 1)
        s.run(RoundRobinSchedule())
        with pytest.raises(SchedulerError):
            s.apply(StepAction(0))

    def test_events_recorded_when_requested(self):
        s = Scheduler([writer_reader], 1, record_events=True)
        result = s.run(RoundRobinSchedule())
        assert len(result.events) == result.steps


class TestBlocks:
    def test_block_gives_common_view(self):
        s = Scheduler([is_once, is_once], 2)
        s.apply(BlockAction(0, (0, 1)))
        result = s.result()
        assert result.decisions[0] == result.decisions[1] == frozenset({(0, 0), (1, 1)})

    def test_sequential_blocks_nest(self):
        s = Scheduler([is_once, is_once], 2)
        s.apply(BlockAction(0, (1,)))
        s.apply(BlockAction(0, (0,)))
        result = s.result()
        assert result.decisions[1] == frozenset({(1, 1)})
        assert result.decisions[0] == frozenset({(0, 0), (1, 1)})

    def test_double_writeread_same_memory_rejected(self):
        def twice(pid):
            def protocol():
                yield WriteReadIS(0, "a")
                yield WriteReadIS(0, "b")
                yield Decide(None)

            return protocol()

        s = Scheduler([twice], 1)
        s.apply(BlockAction(0, (0,)))
        with pytest.raises(ValueError, match="twice"):
            s.apply(BlockAction(0, (0,)))

    def test_block_on_wrong_index_rejected(self):
        s = Scheduler([is_once], 1)
        with pytest.raises(SchedulerError):
            s.apply(BlockAction(7, (0,)))

    def test_empty_block_rejected(self):
        s = Scheduler([is_once], 1)
        with pytest.raises(SchedulerError):
            s.apply(BlockAction(0, ()))

    def test_block_with_register_pending_rejected(self):
        s = Scheduler([writer_reader], 1)
        with pytest.raises(SchedulerError):
            s.apply(BlockAction(0, (0,)))


class TestCrashes:
    def test_crash_stops_process(self):
        s = Scheduler([writer_reader, writer_reader], 2)
        s.apply(CrashAction(0))
        result = s.run(RoundRobinSchedule())
        assert result.crashed == frozenset({0})
        assert set(result.decisions) == {1}
        # Process 0 crashed before writing: invisible to process 1.
        assert result.decisions[1] == (None, 1)

    def test_crash_after_write_still_visible(self):
        s = Scheduler([writer_reader, writer_reader], 2)
        s.apply(StepAction(0))  # write of process 0 lands
        s.apply(CrashAction(0))
        result = s.run(RoundRobinSchedule())
        assert result.decisions[1] == (0, 1)

    def test_random_schedule_with_crashes_terminates(self):
        for seed in range(10):
            s = Scheduler([writer_reader, writer_reader, writer_reader], 3)
            result = s.run(RandomSchedule(seed, crash_pids=[2]))
            assert 1 <= len(result.decisions) <= 3


class TestEnumeration:
    def test_single_process_single_execution(self):
        results = list(enumerate_executions([writer_reader], 1))
        assert len(results) == 1

    def test_two_writer_readers_interleavings(self):
        results = list(enumerate_executions([writer_reader, writer_reader], 2))
        # 4 operations, two per process: C(4,2) = 6 interleavings.
        assert len(results) == 6
        outcomes = {tuple(sorted(r.decisions.items())) for r in results}
        # Snapshot contents distinguish: both-see-both, one-sees-one, ...
        assert len(outcomes) >= 3

    def test_is_enumeration_counts_ordered_partitions(self):
        results = list(enumerate_executions([is_once, is_once, is_once], 3))
        outcomes = {tuple(sorted(r.decisions.items())) for r in results}
        assert len(outcomes) == 13  # Fubini(3): Lemma 3.2 at the runtime level

    def test_enumeration_with_crashes(self):
        results = list(
            enumerate_executions([is_once, is_once], 2, max_crashes=1)
        )
        some_crashed = [r for r in results if r.crashed]
        assert some_crashed
        for r in some_crashed:
            # The survivor decided anyway: wait-freedom.
            assert len(r.decisions) + len(r.crashed) == 2

    def test_max_depth_guard(self):
        def chatty(pid):
            def protocol():
                for _ in range(50):
                    yield WriteCell("r", pid)
                yield Decide(None)

            return protocol()

        with pytest.raises(SchedulerError):
            list(enumerate_executions([chatty], 1, max_depth=10))

    def test_prune(self):
        results = list(
            enumerate_executions(
                [writer_reader, writer_reader], 2, prune=lambda s: True
            )
        )
        assert results == []  # pruned at the root before any completion


def spinner(pid):
    def protocol():
        while True:
            yield WriteCell("r", pid)

    return protocol()


class TestTimeoutDiagnostics:
    def test_timeout_is_a_scheduler_error(self):
        # Callers catching the old bare SchedulerError keep working.
        assert issubclass(SchedulerTimeout, SchedulerError)

    def test_timeout_carries_rich_diagnostics(self):
        s = Scheduler([spinner, spinner], 2, record_events=True)
        with pytest.raises(SchedulerTimeout) as info:
            s.run(RoundRobinSchedule(), max_steps=7)
        err = info.value
        assert set(err.per_process_steps) == {0, 1}
        assert sum(err.per_process_steps.values()) >= 7
        assert isinstance(err.last_action, StepAction)
        assert len(err.events) == 7  # the partial trace
        text = err.diagnostics()
        assert "per-process steps" in text and "p0:" in text and "p1:" in text

    def test_timeout_without_event_recording(self):
        s = Scheduler([spinner], 1)
        with pytest.raises(SchedulerTimeout) as info:
            s.run(RoundRobinSchedule(), max_steps=3)
        assert info.value.events == ()
        assert set(info.value.per_process_steps) == {0}
        assert info.value.per_process_steps[0] >= 3

    def test_timeout_diagnostics_survive_a_traced_run(self):
        # Regression guard for the observability layer: tracing must not
        # perturb (or swallow) the timeout's partial trace.
        from repro.obs import capture

        def timeout():
            s = Scheduler([spinner, spinner], 2, record_events=True)
            with pytest.raises(SchedulerTimeout) as info:
                s.run(RoundRobinSchedule(), max_steps=7)
            return info.value

        plain = timeout()
        with capture() as session:
            traced = timeout()
        assert traced.events == plain.events
        assert traced.per_process_steps == plain.per_process_steps
        assert type(traced.last_action) is type(plain.last_action)
        assert traced.last_action.pid == plain.last_action.pid
        # The steps taken before the guard tripped were still traced, and
        # the aborted run span records the exception.
        names = [s.name for s in session.tracer.spans]
        assert names.count("sched.step") == 7
        (run_span,) = session.tracer.spans_named("sched.run")
        assert run_span.attrs["error"] == "SchedulerTimeout"
        assert "steps" not in run_span.attrs  # completion attrs never set


class TestCrashConfiguration:
    def test_probabilistic_crashes_reproducible_from_seed_and_config(self):
        def run():
            s = Scheduler([writer_reader, writer_reader, writer_reader], 3)
            return s.run(RandomSchedule(7, crash_probability=0.4))

        first, second = run(), run()
        assert first.injected_crashes == second.injected_crashes
        assert first.decisions == second.decisions
        assert first.crashed == second.crashed

    # Pinned: under this seed the schedule injects exactly one crash (pid 1
    # at time 2).  A pinned constant, not a seed scan: the RNG stream is part
    # of the compatibility surface (see test_legacy_configs_keep_their_rng
    # _stream), so a drift that changes which seeds crash should fail loudly
    # here rather than be silently absorbed by re-scanning.
    CRASHING_SEED = 0

    def test_injected_crashes_recorded_with_times(self):
        s = Scheduler([writer_reader, writer_reader], 2)
        result = s.run(RandomSchedule(self.CRASHING_SEED, crash_probability=0.5))
        assert result.crashed, "pinned seed no longer crashes: RNG stream drifted"
        assert {pid for _time, pid in result.injected_crashes} == result.crashed
        assert all(time >= 0 for time, _pid in result.injected_crashes)

    def test_max_crashes_zero_disables_injection(self):
        s = Scheduler([writer_reader, writer_reader], 2)
        result = s.run(RandomSchedule(3, crash_probability=1.0, max_crashes=0))
        assert result.crashed == frozenset()
        assert set(result.decisions) == {0, 1}

    def test_default_cap_always_leaves_a_survivor(self):
        for seed in range(20):
            s = Scheduler([writer_reader, writer_reader, writer_reader], 3)
            result = s.run(RandomSchedule(seed, crash_probability=1.0))
            assert len(result.crashed) <= 2
            assert result.decisions  # somebody decided

    def test_listed_and_probabilistic_crashes_compose(self):
        s = Scheduler([writer_reader] * 4, 4)
        result = s.run(
            RandomSchedule(
                11, crash_pids=[0], crash_probability=0.5, max_crashes=2
            )
        )
        assert len(result.crashed) <= 2
        assert len(result.decisions) + len(result.crashed) == 4

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError, match="crash_probability"):
            RandomSchedule(0, crash_probability=1.5)
        with pytest.raises(ValueError, match="max_crashes"):
            RandomSchedule(0, max_crashes=-1)

    def test_legacy_configs_keep_their_rng_stream(self):
        # crash_probability=0 must not consume random numbers: seeds from
        # older PRs replay the exact same schedules.
        def decisions(schedule):
            s = Scheduler([writer_reader, writer_reader], 2)
            return s.run(schedule).decisions

        for seed in range(10):
            assert decisions(RandomSchedule(seed)) == decisions(
                RandomSchedule(seed, crash_probability=0.0, max_crashes=None)
            )


class TestStateFingerprint:
    def test_requires_history_tracking(self):
        s = Scheduler([writer_reader], 1)
        with pytest.raises(SchedulerError, match="track_history"):
            s.state_fingerprint()

    def test_commuting_writes_converge(self):
        def after(actions):
            s = Scheduler([writer_reader, writer_reader], 2, track_history=True)
            for action in actions:
                s.apply(action)
            return s.state_fingerprint()

        # Single-writer cells: write order is invisible to every future.
        assert after([StepAction(0), StepAction(1)]) == after(
            [StepAction(1), StepAction(0)]
        )

    def test_diverging_snapshots_differ(self):
        def after(actions):
            s = Scheduler([writer_reader, writer_reader], 2, track_history=True)
            for action in actions:
                s.apply(action)
            return s.state_fingerprint()

        # p0 snapshots before vs after p1's write: different delivered views.
        early = after([StepAction(0), StepAction(0)])
        late = after([StepAction(0), StepAction(1), StepAction(0)])
        assert early != late


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run(seed):
            s = Scheduler([writer_reader, writer_reader, writer_reader], 3)
            return s.run(RandomSchedule(seed)).decisions

        for seed in range(5):
            assert run(seed) == run(seed)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_schedules_always_terminate(self, seed):
        s = Scheduler([writer_reader, writer_reader], 2)
        result = s.run(RandomSchedule(seed), max_steps=1000)
        assert set(result.decisions) == {0, 1}

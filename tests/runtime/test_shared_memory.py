"""SWMR register region tests."""

import pytest

from repro.runtime.shared_memory import RegisterRegion, SharedMemorySystem


class TestRegion:
    def test_initially_empty(self):
        r = RegisterRegion("r", 3)
        assert r.snapshot() == (None, None, None)
        assert r.version_vector() == (0, 0, 0)

    def test_write_own_cell(self):
        r = RegisterRegion("r", 2)
        r.write(1, "x")
        assert r.snapshot() == (None, "x")
        assert r.version_vector() == (0, 1)

    def test_overwrite_bumps_version(self):
        r = RegisterRegion("r", 1)
        r.write(0, "a")
        r.write(0, "b")
        assert r.snapshot() == ("b",)
        assert r.version_vector() == (2,)

    def test_versioned_snapshot(self):
        r = RegisterRegion("r", 2)
        r.write(0, "a")
        assert r.versioned_snapshot() == (("a", 1), (None, 0))

    def test_out_of_range_pid_rejected(self):
        r = RegisterRegion("r", 2)
        with pytest.raises(ValueError):
            r.write(2, "x")
        with pytest.raises(ValueError):
            r.write(-1, "x")

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            RegisterRegion("r", 0)


class TestSystem:
    def test_regions_created_lazily_and_cached(self):
        sys = SharedMemorySystem(2)
        a = sys.region("a")
        assert sys.region("a") is a
        assert sys.region_names() == ["a"]

    def test_is_memories_lazily_created(self):
        sys = SharedMemorySystem(2)
        assert sys.highest_is_memory_used == -1
        m = sys.immediate_snapshot_memory(3)
        assert sys.immediate_snapshot_memory(3) is m
        assert sys.highest_is_memory_used == 3

    def test_needs_processes(self):
        with pytest.raises(ValueError):
            SharedMemorySystem(0)

"""The snapshot legality checker must accept legal and reject illegal traces."""

import pytest

from repro.runtime.traces import (
    EmulatedSnapshot,
    EmulatedWrite,
    SnapshotLegalityError,
    check_snapshot_legality,
)


def w(pid, seq, start, end, value="v"):
    return EmulatedWrite(pid, seq, value, start, end)


def s(pid, seq, vector, start, end):
    values = tuple("x" if n else None for n in vector)
    return EmulatedSnapshot(pid, seq, vector, values, start, end)


class TestAccepts:
    def test_empty_trace(self):
        check_snapshot_legality([], [], 2)

    def test_sequential_run(self):
        writes = [w(0, 1, 0, 1), w(1, 1, 4, 5)]
        snapshots = [s(0, 1, (1, 0), 2, 3), s(1, 1, (1, 1), 6, 7)]
        check_snapshot_legality(writes, snapshots, 2)

    def test_concurrent_snapshot_may_or_may_not_see_inflight_write(self):
        # Write of 1 overlaps snapshot of 0: both outcomes legal.
        writes = [w(0, 1, 0, 1), w(1, 1, 2, 6)]
        check_snapshot_legality(writes, [s(0, 1, (1, 0), 3, 5)], 2)
        check_snapshot_legality(writes, [s(0, 1, (1, 1), 3, 5)], 2)


class TestRejects:
    def test_incomparable_vectors(self):
        writes = [w(0, 1, 0, 1), w(1, 1, 0, 1)]
        snapshots = [s(0, 1, (1, 0), 2, 3), s(1, 1, (0, 1), 2, 3)]
        with pytest.raises(SnapshotLegalityError, match="incomparable"):
            check_snapshot_legality(writes, snapshots, 2)

    def test_wrong_arity(self):
        with pytest.raises(SnapshotLegalityError, match="arity"):
            check_snapshot_legality([], [s(0, 1, (0,), 0, 1)], 2)

    def test_missing_own_write(self):
        writes = [w(0, 1, 0, 1)]
        snapshots = [s(0, 1, (0, 0), 2, 3)]  # claims not to see its own write
        with pytest.raises(SnapshotLegalityError, match="own seq"):
            check_snapshot_legality(writes, snapshots, 2)

    def test_missed_completed_write(self):
        writes = [w(0, 1, 0, 1), w(1, 1, 0, 1)]
        snapshots = [s(0, 1, (1, 0), 5, 6)]  # write of 1 completed at t=1
        with pytest.raises(SnapshotLegalityError, match="misses"):
            check_snapshot_legality(writes, snapshots, 2)

    def test_write_from_the_future(self):
        writes = [w(0, 1, 0, 1), w(1, 1, 10, 11)]
        snapshots = [s(0, 1, (1, 1), 2, 3)]  # sees a write that starts at t=10
        with pytest.raises(SnapshotLegalityError, match="not started"):
            check_snapshot_legality(writes, snapshots, 2)

    def test_non_monotonic_snapshots(self):
        writes = [w(0, 1, 0, 1), w(0, 2, 4, 5), w(1, 1, 0, 1)]
        snapshots = [
            s(0, 1, (1, 1), 2, 3),
            s(0, 2, (2, 0), 6, 7),  # forgets write 1#1
        ]
        with pytest.raises(SnapshotLegalityError):
            check_snapshot_legality(writes, snapshots, 2)

    def test_gapped_write_sequence(self):
        writes = [w(0, 2, 0, 1)]  # no seq 1
        with pytest.raises(SnapshotLegalityError, match="consecutively"):
            check_snapshot_legality(writes, [], 2)

    def test_out_of_range_writer(self):
        with pytest.raises(SnapshotLegalityError, match="out-of-range"):
            check_snapshot_legality([w(5, 1, 0, 1)], [], 2)

"""Service-test configuration: pinned SDS cache, in-thread server harness.

Every test in this package runs against a private persistent-cache
directory (``REPRO_SDS_CACHE_DIR``) so warming a substrate in one test can
neither wipe nor pre-warm another test's — or the developer's — cache.

The server tests need a *running* asyncio service and a *blocking* client
in the same process, so :func:`running_service` hosts the event loop on a
daemon thread and hands the test the live :class:`SolvabilityService`;
teardown stops the loop through the same graceful path SIGTERM takes.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading

import pytest

from repro.service import ServiceConfig, SolvabilityService


@pytest.fixture(autouse=True)
def _private_sds_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SDS_CACHE_DIR", str(tmp_path / "sds-cache"))


@contextlib.contextmanager
def running_service(config: ServiceConfig):
    """Run a service on its own event-loop thread; yield it once started."""
    box: dict = {}
    started = threading.Event()

    async def body() -> None:
        service = SolvabilityService(config)
        await service.start()
        box["service"] = service
        box["loop"] = asyncio.get_running_loop()
        started.set()
        try:
            await service.serve_until_stopped()
        finally:
            await service.stop()

    def runner() -> None:
        try:
            asyncio.run(body())
        except BaseException as exc:  # noqa: BLE001 - surfaced by the test
            box["crash"] = exc
            started.set()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(timeout=120), "service did not start"
    if "crash" in box:
        raise box["crash"]
    try:
        yield box["service"]
    finally:
        # RuntimeError: the loop is already closed when the test stopped the
        # server itself (e.g. via the shutdown op) — nothing left to signal.
        with contextlib.suppress(RuntimeError):
            box["loop"].call_soon_threadsafe(box["service"]._stop_event.set)
        thread.join(timeout=120)
        assert not thread.is_alive(), "service did not stop"

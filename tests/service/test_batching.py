"""Batching properties: one compile per burst, differential parity, deadlines.

These run the service in-process (``workers=0``: the executor is a thread
pool in this process) so the observability counters incremented inside
probes are visible to the test — that is what lets the coalescing property
be pinned to the ``svc.probe.executed`` counter rather than to timing.

Each Hypothesis example builds a *fresh* service (empty result cache,
empty in-flight table) inside ``asyncio.run``; requests go through
``handle_request``, the same dispatch the socket layer uses.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solvability import solve_task
from repro.obs import capture
from repro.service import ServiceConfig, SolvabilityService
from repro.service.protocol import PROTOCOL, validate_request
from repro.service.registry import resolve_task

# Cheap zoo specs: small substrates, sub-second probes even on cold caches.
SPECS = [
    ("identity", (2,), 1),
    ("consensus", (2,), 2),
    ("set_consensus", (3, 2), 1),
    ("approximate_agreement", (2, 3), 2),
]

spec_strategy = st.sampled_from(SPECS)


def solve_frame(name, args, max_rounds, **extra) -> dict:
    return validate_request(
        {
            "v": PROTOCOL,
            "op": "solve",
            "task": {"name": name, "args": list(args)},
            "max_rounds": max_rounds,
            **extra,
        }
    )


def with_service(body, **overrides):
    """Run ``await body(service)`` against a fresh in-process service."""
    config_kwargs = dict(port=0, workers=0, warm_levels=())
    config_kwargs.update(overrides)

    async def main():
        service = SolvabilityService(ServiceConfig(**config_kwargs))
        await service.start()
        try:
            return await body(service)
        finally:
            await service.stop()

    return asyncio.run(main())


def counter_value(session, name: str) -> float:
    total = 0.0
    for series in session.metrics.series():
        snapshot = series.snapshot()
        if snapshot["kind"] == "counter" and snapshot["name"] == name:
            total += snapshot["value"]
    return total


class TestCoalescing:
    @settings(max_examples=8, deadline=None)
    @given(spec=spec_strategy, burst=st.integers(min_value=2, max_value=6))
    def test_identical_burst_costs_exactly_one_compile(self, spec, burst):
        name, args, max_rounds = spec
        request = solve_frame(name, args, max_rounds)

        async def body(service):
            return await asyncio.gather(
                *(service.handle_request(dict(request)) for _ in range(burst))
            )

        with capture() as session:
            replies = with_service(body)

        assert all(reply["status"] == "ok" for reply in replies)
        assert counter_value(session, "svc.probe.executed") == 1
        cache_labels = sorted(reply["cache"] for reply in replies)
        assert cache_labels.count("miss") == 1
        assert cache_labels.count("coalesced") == burst - 1
        verdicts = {reply["verdict"] for reply in replies}
        assert len(verdicts) == 1

    @settings(max_examples=4, deadline=None)
    @given(spec=spec_strategy)
    def test_repeat_after_burst_is_a_cache_hit(self, spec):
        name, args, max_rounds = spec
        request = solve_frame(name, args, max_rounds)

        async def body(service):
            first = await service.handle_request(dict(request))
            second = await service.handle_request(dict(request))
            return first, second

        first, second = with_service(body)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert second["verdict"] == first["verdict"]
        assert second["levels"] == first["levels"]

    def test_same_substrate_different_tasks_share_one_warm_pass(self):
        # set_consensus(3, 2) and set_consensus(3, 3) live over the same
        # base complex: concurrent queries must coalesce the SDS build even
        # though the probes themselves differ.
        left = solve_frame("set_consensus", (3, 2), 1)
        right = solve_frame("set_consensus", (3, 3), 1)

        async def body(service):
            return await asyncio.gather(
                service.handle_request(left), service.handle_request(right)
            )

        with capture() as session:
            replies = with_service(body)

        assert all(reply["status"] == "ok" for reply in replies)
        assert counter_value(session, "svc.probe.executed") == 2
        assert counter_value(session, "svc.substrate.warmed") == 1


class TestDifferentialParity:
    @settings(max_examples=6, deadline=None)
    @given(spec=spec_strategy)
    def test_service_reply_equals_direct_solve(self, spec):
        name, args, max_rounds = spec
        request = solve_frame(name, args, max_rounds)

        async def body(service):
            return await service.handle_request(dict(request))

        reply = with_service(body)
        direct = solve_task(resolve_task(name, args), max_rounds)

        assert reply["status"] == "ok"
        assert reply["verdict"] == direct.status.value
        assert reply["rounds"] == direct.rounds
        assert len(reply["levels"]) == len(direct.levels)
        for level, report in zip(reply["levels"], direct.levels):
            assert level["rounds"] == report.rounds
            assert level["satisfiable"] == report.satisfiable
            assert level["nodes"] == report.nodes_explored
            assert level["vertices"] == report.vertices
            assert level["exhausted"] == report.exhausted

    @settings(max_examples=4, deadline=None)
    @given(
        spec=st.sampled_from(
            [("approximate_agreement", (2, 9), 2), ("set_consensus", (3, 2), 1)]
        ),
        shards=st.integers(min_value=2, max_value=4),
    )
    def test_sharded_probe_agrees_with_serial(self, spec, shards):
        name, args, rounds = spec
        sharded_request = solve_frame(
            name, args, rounds, min_rounds=rounds, shards=shards
        )
        serial_request = solve_frame(name, args, rounds, min_rounds=rounds)

        async def body(service):
            return (
                await service.handle_request(dict(sharded_request)),
                await service.handle_request(dict(serial_request)),
            )

        sharded, serial = with_service(body)
        assert sharded["status"] == serial["status"] == "ok"
        assert sharded["shards"] == shards
        assert sharded["verdict"] == serial["verdict"]
        assert sharded["rounds"] == serial["rounds"]
        level_s, level_d = sharded["levels"][0], serial["levels"][0]
        assert level_s["satisfiable"] == level_d["satisfiable"]
        assert level_s["vertices"] == level_d["vertices"]


class TestDeadlines:
    @settings(max_examples=4, deadline=None)
    @given(spec=spec_strategy)
    def test_expired_deadline_declines_without_poisoning_cache(self, spec):
        name, args, max_rounds = spec
        expired = solve_frame(name, args, max_rounds, deadline_ms=0)
        fresh = solve_frame(name, args, max_rounds)

        async def body(service):
            declined = await service.handle_request(dict(expired))
            # The driver the declined query started keeps computing; once
            # it lands, the identical query must be a *correct* cache hit.
            await service.scheduler.drain(timeout=120)
            answered = await service.handle_request(dict(fresh))
            return declined, answered, service.stats_snapshot()

        declined, answered, stats = with_service(body)
        direct = solve_task(resolve_task(name, args), max_rounds)

        assert declined["status"] == "overloaded"
        assert declined["reason"] == "deadline"
        assert answered["status"] == "ok"
        assert answered["cache"] == "hit"
        assert answered["verdict"] == direct.status.value
        assert answered["rounds"] == direct.rounds
        assert stats["overloaded"] == 1
        assert stats["hits"] == 1

    def test_generous_deadline_is_not_triggered(self):
        request = solve_frame("identity", (2,), 1, deadline_ms=120_000)

        async def body(service):
            return await service.handle_request(dict(request))

        reply = with_service(body)
        assert reply["status"] == "ok"

"""Model-tagged queries end to end: protocol, cache keys, live round-trips.

The acceptance bar from the model-zoo issue: a model-tagged query round-trips
through a live server with a per-model verdict-cache hit on the second call,
both model spellings (string and object) land on one cache entry, and unknown
model names come back as *typed* error frames (``kind = "unknown-model"``).
"""

import pytest

from repro.service import PROTOCOL, ServiceClient, ServiceConfig
from repro.service.protocol import ProtocolError, validate_request
from repro.service.registry import canonical_model, zoo_mix
from repro.service.scheduler import query_key

from tests.service.conftest import running_service


def solve_frame(**overrides) -> dict:
    frame = {
        "v": PROTOCOL,
        "op": "solve",
        "task": {"name": "consensus", "args": [2]},
        "max_rounds": 1,
    }
    frame.update(overrides)
    return frame


class TestValidation:
    def test_model_field_defaults_to_iis(self):
        normalized = validate_request(solve_frame())
        assert normalized["model"] == {"name": "iis", "args": []}

    def test_string_and_object_spellings_normalize_identically(self):
        as_string = validate_request(solve_frame(model="t_resilient(1)"))
        as_object = validate_request(
            solve_frame(model={"name": "t_resilient", "args": [1]})
        )
        assert as_string["model"] == as_object["model"] == {
            "name": "t_resilient",
            "args": [1],
        }

    def test_unknown_model_is_a_typed_protocol_error(self):
        for spelling in ("byzantine(1)", {"name": "byzantine", "args": [1]}):
            with pytest.raises(ProtocolError) as excinfo:
                validate_request(solve_frame(model=spelling))
            assert excinfo.value.kind == "unknown-model"

    def test_malformed_model_args_are_bad_requests(self):
        with pytest.raises(ProtocolError) as excinfo:
            validate_request(solve_frame(model={"name": "t_resilient", "args": ["x"]}))
        assert excinfo.value.kind == "bad-request"

    def test_zoo_mix_requests_all_validate(self):
        mix = [validate_request(frame) for frame in zoo_mix()]
        tagged = [r for r in mix if r["model"]["name"] != "iis"]
        assert len(mix) == 14
        assert len(tagged) == 4  # one per non-identity model family


class TestCacheKey:
    def test_identity_spellings_share_one_key(self):
        plain = query_key(validate_request(solve_frame()))
        tagged = query_key(validate_request(solve_frame(model="iis")))
        assert plain == tagged
        assert canonical_model(None) == ("iis", ())

    def test_models_split_the_key(self):
        base = query_key(validate_request(solve_frame()))
        t0 = query_key(validate_request(solve_frame(model="t_resilient(0)")))
        t1 = query_key(validate_request(solve_frame(model="t_resilient(1)")))
        assert len({base, t0, t1}) == 3

    def test_out_of_bounds_model_args_rejected_at_canonicalization(self):
        with pytest.raises(ProtocolError) as excinfo:
            canonical_model({"name": "t_resilient", "args": [65]})
        assert excinfo.value.kind == "bad-request"


class TestLiveService:
    def config(self, tmp_path) -> ServiceConfig:
        return ServiceConfig(
            socket_path=str(tmp_path / "svc.sock"),
            workers=0,
            warm_levels=((1, 1),),
        )

    def test_model_query_round_trips_with_per_model_cache(self, tmp_path):
        with running_service(self.config(tmp_path)) as service:
            with ServiceClient(socket_path=service.endpoints.socket_path) as c:
                plain = c.solve("consensus", [2], max_rounds=1)
                assert plain["verdict"] == "unsolvable-up-to-bound"

                tagged = c.solve(
                    "consensus", [2], max_rounds=1, model="t_resilient(0)"
                )
                assert tagged["status"] == "ok"
                assert tagged["cache"] == "miss"  # distinct key from plain
                assert tagged["verdict"] == "solvable"
                assert tagged["rounds"] == 1
                assert tagged["model"] == "t_resilient(0)"

                again = c.solve(
                    "consensus", [2], max_rounds=1,
                    model={"name": "t_resilient", "args": [0]},
                )
                assert again["cache"] == "hit"  # both spellings, one entry
                assert again["verdict"] == "solvable"

                still_plain = c.solve("consensus", [2], max_rounds=1)
                assert still_plain["cache"] == "hit"
                assert still_plain["verdict"] == "unsolvable-up-to-bound"
                assert "model" not in still_plain  # iis replies are pre-model

    def test_unknown_model_error_frame_carries_kind(self, tmp_path):
        with running_service(self.config(tmp_path)) as service:
            with ServiceClient(socket_path=service.endpoints.socket_path) as c:
                reply = c.solve("consensus", [2], model="byzantine(1)")
                assert reply["status"] == "error"
                assert reply["kind"] == "unknown-model"
                assert "unknown model" in reply["error"]
                assert c.ping()  # connection survives the bad request

    def test_empty_restriction_is_an_error_not_a_verdict(self, tmp_path):
        with running_service(self.config(tmp_path)) as service:
            with ServiceClient(socket_path=service.endpoints.socket_path) as c:
                # Live set {2} names a color the 2-process base never has.
                reply = c.solve("consensus", [2], model="adversary(4)")
                assert reply["status"] == "error"
                assert "admits no run" in reply["error"]

"""Wire protocol: framing, validation, normalization, strict rejection."""

import json

import pytest

from repro.service.protocol import (
    PROTOCOL,
    ProtocolError,
    decode_line,
    encode_record,
    error_reply,
    validate_request,
)


def frame(**fields) -> dict:
    return {"v": PROTOCOL, **fields}


class TestFraming:
    def test_encode_decode_round_trip(self):
        record = frame(op="solve", task={"name": "consensus", "args": [2]})
        encoded = encode_record(record)
        assert encoded.endswith(b"\n")
        assert b"\n" not in encoded[:-1]
        assert decode_line(encoded) == record

    def test_decode_accepts_str_and_bytes(self):
        record = frame(op="ping")
        assert decode_line(json.dumps(record)) == record
        assert decode_line(json.dumps(record).encode()) == record

    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            decode_line(b"[1, 2]")

    def test_rejects_non_utf8(self):
        with pytest.raises(ProtocolError, match="not UTF-8"):
            decode_line(b"\xff\xfe{}")

    def test_rejects_oversized_frame(self):
        huge = json.dumps(frame(op="ping", pad="x" * (1 << 20))).encode()
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_line(huge)


class TestValidation:
    def test_requires_protocol_revision(self):
        with pytest.raises(ProtocolError, match="protocol revision"):
            validate_request({"op": "ping"})
        with pytest.raises(ProtocolError, match="protocol revision"):
            validate_request({"v": "repro-svc-v0", "op": "ping"})

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request(frame(op="frobnicate"))

    def test_solve_defaults_filled_in(self):
        normalized = validate_request(
            frame(op="solve", task={"name": "consensus", "args": [2]})
        )
        assert normalized["min_rounds"] == 0
        assert normalized["max_rounds"] == 1
        assert normalized["node_budget"] == 2_000_000
        assert normalized["shards"] == 1
        assert normalized["options"] == {}
        assert "deadline_ms" not in normalized

    def test_max_rounds_defaults_above_min(self):
        normalized = validate_request(
            frame(op="solve", task={"name": "consensus", "args": [2]},
                  min_rounds=3)
        )
        assert normalized["max_rounds"] == 3

    def test_rejects_inverted_round_window(self):
        with pytest.raises(ProtocolError, match="max_rounds"):
            validate_request(
                frame(op="solve", task={"name": "consensus", "args": [2]},
                      min_rounds=2, max_rounds=1)
            )

    def test_rejects_bool_masquerading_as_int(self):
        with pytest.raises(ProtocolError, match="node_budget"):
            validate_request(
                frame(op="solve", task={"name": "consensus", "args": [2]},
                      node_budget=True)
            )

    def test_rejects_malformed_task(self):
        with pytest.raises(ProtocolError, match="task"):
            validate_request(frame(op="solve", task="consensus"))
        with pytest.raises(ProtocolError, match="list of integers"):
            validate_request(
                frame(op="solve", task={"name": "consensus", "args": ["2"]})
            )

    def test_deadline_normalized_to_float(self):
        normalized = validate_request(
            frame(op="solve", task={"name": "consensus", "args": [2]},
                  deadline_ms=5)
        )
        assert normalized["deadline_ms"] == 5.0
        with pytest.raises(ProtocolError, match="deadline_ms"):
            validate_request(
                frame(op="solve", task={"name": "consensus", "args": [2]},
                      deadline_ms="soon")
            )

    def test_rejects_unknown_and_mistyped_options(self):
        base = dict(op="solve", task={"name": "consensus", "args": [2]})
        with pytest.raises(ProtocolError, match="unknown search option"):
            validate_request(frame(**base, options={"turbo": True}))
        with pytest.raises(ProtocolError, match="kernel"):
            validate_request(frame(**base, options={"kernel": "yes"}))
        with pytest.raises(ProtocolError, match="mask_backend"):
            validate_request(frame(**base, options={"mask_backend": "gpu"}))

    def test_id_echo_field_must_be_string(self):
        normalized = validate_request(frame(op="ping", id="tag-7"))
        assert normalized["id"] == "tag-7"
        with pytest.raises(ProtocolError, match="id"):
            validate_request(frame(op="ping", id=7))

    def test_tolerates_unknown_extra_fields(self):
        normalized = validate_request(
            frame(op="solve", task={"name": "consensus", "args": [2]},
                  future_field="ignored")
        )
        assert "future_field" not in normalized


class TestErrorReply:
    def test_shape(self):
        reply = error_reply("boom", id_="tag")
        assert reply["status"] == "error"
        assert reply["error"] == "boom"
        assert reply["id"] == "tag"
        assert reply["v"] == PROTOCOL

"""Task registry: spec canonicalization, bounds, worker-side resolution."""

import pytest

from repro.core.task import Task
from repro.service.protocol import validate_request
from repro.service.registry import (
    canonical_spec,
    conformance_mix,
    resolve_task,
    task_registry,
    zoo_mix,
)
from repro.service.protocol import ProtocolError


class TestCanonicalSpec:
    def test_known_specs_round_trip(self):
        name, args = canonical_spec({"name": "set_consensus", "args": [3, 2]})
        assert (name, args) == ("set_consensus", (3, 2))

    def test_unknown_name_lists_vocabulary(self):
        with pytest.raises(ProtocolError, match="unknown task"):
            canonical_spec({"name": "byzantine_agreement", "args": [3]})

    def test_wrong_arity(self):
        with pytest.raises(ProtocolError, match="argument"):
            canonical_spec({"name": "consensus", "args": [2, 2]})

    def test_out_of_bounds_arguments(self):
        with pytest.raises(ProtocolError, match="processes"):
            canonical_spec({"name": "consensus", "args": [99]})
        with pytest.raises(ProtocolError, match="k must be"):
            canonical_spec({"name": "set_consensus", "args": [3, 9]})
        with pytest.raises(ProtocolError, match="resolution"):
            canonical_spec({"name": "approximate_agreement", "args": [2, 100_000]})
        with pytest.raises(ProtocolError, match="graph length"):
            canonical_spec({"name": "graph_path", "args": [1]})


class TestResolveTask:
    def test_every_registered_spec_resolves(self):
        samples = {
            "identity": (2,),
            "constant": (2,),
            "consensus": (2,),
            "set_consensus": (3, 2),
            "approximate_agreement": (2, 3),
            "participating_set": (2,),
            "graph_path": (3,),
            "graph_cycle": (4,),
        }
        assert set(samples) == set(task_registry())
        for name, args in samples.items():
            task = resolve_task(name, args)
            assert isinstance(task, Task)

    def test_unknown_name_raises(self):
        with pytest.raises(ProtocolError, match="unknown task"):
            resolve_task("frobnicate", ())


class TestZooMix:
    def test_every_request_is_wire_valid(self):
        for request in zoo_mix():
            normalized = validate_request(request)
            canonical_spec(normalized["task"])

    def test_mix_repeats_substrates(self):
        # The mix is deliberately heavy on shared bases — that is what the
        # load benchmark's cache-hit-rate floor measures against.
        bases = [
            (request["task"]["name"], len(request["task"]["args"]))
            for request in zoo_mix()
        ]
        assert len(bases) > len(set(bases)) or len(zoo_mix()) >= 10


class TestConformanceMix:
    def test_every_request_is_wire_valid(self):
        requests = conformance_mix()
        assert requests
        for request in requests:
            normalized = validate_request(request)
            canonical_spec(normalized["task"])

    def test_covers_the_non_composed_sweep_exactly(self):
        """One frame per sweep cell, minus the composed-model cells (the
        wire format rejects compositions by design)."""
        from repro.conformance.entries import sweep_entries

        entries = sweep_entries()
        composed = [e for e in entries if "&" in e.model]
        assert composed, "sweep lost its composed cells"
        assert len(conformance_mix()) == len(entries) - len(composed)

    def test_model_frames_are_structured_not_strings(self):
        models = [r["model"] for r in conformance_mix() if "model" in r]
        assert models, "the sweep lost its sub-IIS cells"
        for frame in models:
            assert isinstance(frame, dict)
            assert "&" not in frame["name"]

"""End-to-end server tests: real sockets, the blocking client, traces.

All servers here run with ``workers=0`` (in-process thread executor): the
tests exercise protocol, caching and lifecycle — pool mechanics are the
load benchmark's and the smoke test's job, where process startup cost is
amortized over thousands of queries instead of being paid per test.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs.export import load_capture_jsonl, spans_for_query
from repro.service import PROTOCOL, ServiceClient, ServiceConfig

from tests.service.conftest import running_service


def unix_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        socket_path=str(tmp_path / "svc.sock"),
        workers=0,
        warm_levels=((1, 1),),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestUnixSocket:
    def test_ping_stats_and_solve(self, tmp_path):
        with running_service(unix_config(tmp_path)) as service:
            with ServiceClient(socket_path=service.endpoints.socket_path) as c:
                assert c.ping()

                reply = c.solve("consensus", [2], max_rounds=2)
                assert reply["status"] == "ok"
                assert reply["v"] == PROTOCOL
                assert reply["cache"] == "miss"
                assert reply["verdict"] == "unsolvable-up-to-bound"
                assert reply["rounds"] is None
                assert [level["rounds"] for level in reply["levels"]] == [0, 1, 2]
                assert reply["query_id"].startswith("q-")

                again = c.solve("consensus", [2], max_rounds=2)
                assert again["cache"] == "hit"
                assert again["verdict"] == reply["verdict"]
                assert again["query_id"] != reply["query_id"]

                stats = c.stats()
                assert stats["queries"] == 2
                assert stats["hits"] == 1
                assert stats["misses"] == 1
                assert stats["cache_hit_rate"] == pytest.approx(0.5)

    def test_solvable_task_reports_rounds(self, tmp_path):
        with running_service(unix_config(tmp_path)) as service:
            with ServiceClient(socket_path=service.endpoints.socket_path) as c:
                reply = c.solve("identity", [2], max_rounds=1)
                assert reply["status"] == "ok"
                assert reply["verdict"] == "solvable"
                assert reply["rounds"] == 0

    def test_unknown_task_is_an_error_reply_not_a_hangup(self, tmp_path):
        with running_service(unix_config(tmp_path)) as service:
            with ServiceClient(socket_path=service.endpoints.socket_path) as c:
                reply = c.solve("byzantine", [3])
                assert reply["status"] == "error"
                assert "unknown task" in reply["error"]
                assert c.ping()  # connection survives the bad request

    def test_garbage_line_gets_error_reply(self, tmp_path):
        import socket as socket_module

        with running_service(unix_config(tmp_path)) as service:
            sock = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            sock.settimeout(30)
            sock.connect(service.endpoints.socket_path)
            try:
                sock.sendall(b"{not json\n")
                reply = json.loads(sock.makefile("rb").readline())
                assert reply["status"] == "error"
                assert "JSON" in reply["error"]
            finally:
                sock.close()

    def test_id_echoed_back(self, tmp_path):
        with running_service(unix_config(tmp_path)) as service:
            with ServiceClient(socket_path=service.endpoints.socket_path) as c:
                reply = c.solve("identity", [2], id_="tag-42")
                assert reply["id"] == "tag-42"

    def test_shutdown_op_stops_the_server(self, tmp_path):
        import os

        with running_service(unix_config(tmp_path)) as service:
            path = service.endpoints.socket_path
            with ServiceClient(socket_path=path) as c:
                assert c.shutdown()
        # running_service's teardown joined the loop thread; the graceful
        # path must have unlinked the socket on its way out.
        assert not os.path.exists(path)

    def test_queue_full_when_admission_bound_is_zero(self, tmp_path):
        config = unix_config(tmp_path, max_pending=0)
        with running_service(config) as service:
            with ServiceClient(socket_path=service.endpoints.socket_path) as c:
                reply = c.solve("consensus", [2])
                assert reply["status"] == "overloaded"
                assert reply["reason"] == "queue-full"
                stats = c.stats()
                assert stats["overloaded"] == 1
                assert stats["queries"] == 1


class TestTcp:
    def test_ephemeral_port_round_trip(self, tmp_path):
        config = ServiceConfig(port=0, workers=0, warm_levels=((1, 1),))
        with running_service(config) as service:
            host, port = service.endpoints.tcp
            with ServiceClient(host=host, port=port) as c:
                assert c.ping()
                reply = c.solve("set_consensus", [3, 3], max_rounds=1)
                assert reply["status"] == "ok"
                assert reply["verdict"] == "solvable"


class TestTraceExport:
    def test_trace_out_tags_queries_and_cli_filters_them(self, tmp_path, capsys):
        trace_file = tmp_path / "svc-trace.jsonl"
        config = unix_config(tmp_path, trace_out=str(trace_file))
        with running_service(config) as service:
            with ServiceClient(socket_path=service.endpoints.socket_path) as c:
                first = c.solve("consensus", [2], max_rounds=1)
                second = c.solve("identity", [2], max_rounds=1)
        # Export lands on graceful stop (running_service teardown).
        document = load_capture_jsonl(trace_file.read_text())
        for reply in (first, second):
            spans = spans_for_query(document, reply["query_id"])
            roots = [s for s in spans if s["name"] == "svc.query"]
            assert len(roots) == 1
            assert roots[0]["attrs"]["query_id"] == reply["query_id"]
            assert roots[0]["attrs"]["task"] == reply["task"].split("(")[0]
        assert spans_for_query(document, "q-999999") == []

        # The CLI cut of the same file: meta line + that query's spans only.
        assert (
            cli_main(
                ["trace", "--from", str(trace_file),
                 "--query-id", first["query_id"], "--out", "-"]
            )
            == 0
        )
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert lines[0]["type"] == "meta"
        span_lines = [r for r in lines if r["type"] == "span"]
        assert span_lines
        tagged = [r for r in span_lines if r["attrs"].get("query_id")]
        assert {r["attrs"]["query_id"] for r in tagged} == {first["query_id"]}

    def test_trace_query_id_requires_from(self, capsys):
        assert cli_main(["trace", "--query-id", "q-000001"]) == 2
        assert "--from" in capsys.readouterr().err

"""Hypothesis strategies for the paper's combinatorial objects.

Shared by the property suites (SDS invariants) and the differential suites
(kernel vs. naive search, DPOR vs. naive enumeration).  Everything here
generates *valid* objects by construction — chromatic simplices have
distinct colors, tasks satisfy the ``Task`` validator's color and
non-emptiness conditions — so shrinking never wanders into constructor
errors and every counterexample is a genuine property failure.
"""

from __future__ import annotations

from itertools import product

from hypothesis import strategies as st

from repro.core.task import Task, delta_from_rule
from repro.mc.explorer import CrashBudget
from repro.runtime.scheduler import RandomSchedule
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex

# Small payload pool: interning makes repeated payloads cheap, and collisions
# between simplices (shared faces) are exactly the interesting case for SDS.
payloads = st.integers(min_value=0, max_value=2)


@st.composite
def chromatic_simplices(
    draw, colors: tuple[int, ...] = (0, 1, 2), payload=payloads
) -> Simplex:
    """A properly colored simplex over a nonempty subset of ``colors``."""
    chosen = draw(
        st.sets(st.sampled_from(colors), min_size=1, max_size=len(colors))
    )
    return Simplex(Vertex(color, draw(payload)) for color in sorted(chosen))


@st.composite
def chromatic_complexes(
    draw,
    colors: tuple[int, ...] = (0, 1, 2),
    max_tops: int = 3,
    payload=payloads,
) -> SimplicialComplex:
    """A chromatic complex glued from 1..``max_tops`` random simplices."""
    tops = draw(
        st.lists(
            chromatic_simplices(colors=colors, payload=payload),
            min_size=1,
            max_size=max_tops,
        )
    )
    return SimplicialComplex(tops)


@st.composite
def tasks(draw, max_processes: int = 3, max_values: int = 2) -> Task:
    """A random decision task over a single full input simplex.

    The allowed full output tuples are a random nonempty subset of the
    per-color value products; Δ on a face is the projection of every full
    tuple (so Δ is total and color-matching by construction).  Verdicts
    genuinely vary: a singleton tuple set is consensus-like (usually
    unsolvable), the full product is identity-like (trivially solvable).
    """
    n = draw(st.integers(min_value=2, max_value=max_processes))
    colors = tuple(range(n))
    input_complex = SimplicialComplex([Simplex(Vertex(c, c) for c in colors)])
    pools = {
        c: tuple(range(draw(st.integers(min_value=1, max_value=max_values))))
        for c in colors
    }
    full_tuples = [
        Simplex(Vertex(c, value) for c, value in zip(colors, values))
        for values in product(*(pools[c] for c in colors))
    ]
    indices = draw(
        st.sets(
            st.sampled_from(range(len(full_tuples))),
            min_size=1,
            max_size=len(full_tuples),
        )
    )
    tops = [full_tuples[i] for i in sorted(indices)]
    output_complex = SimplicialComplex(tops)

    def rule(input_simplex: Simplex):
        return {
            top.restrict_to_colors(input_simplex.colors) for top in tops
        }

    return Task(
        name=f"random(n={n},tuples={len(tops)})",
        input_complex=input_complex,
        output_complex=output_complex,
        delta=delta_from_rule(input_complex, rule),
    )


def schedules(max_seed: int = 2**16) -> st.SearchStrategy[RandomSchedule]:
    """Seeded random schedules (deterministic functions of the drawn seed)."""
    return st.builds(
        RandomSchedule,
        st.integers(min_value=0, max_value=max_seed),
        block_probability=st.floats(min_value=0.1, max_value=0.9),
    )


@st.composite
def crash_budgets(draw, processes: int = 2) -> CrashBudget:
    """Random fault-injection budgets, sometimes restricted to a pid subset."""
    max_crashes = draw(st.integers(min_value=0, max_value=processes - 1))
    pids: tuple[int, ...] | None = None
    if max_crashes and draw(st.booleans()):
        pids = tuple(
            sorted(
                draw(
                    st.sets(
                        st.integers(min_value=0, max_value=processes - 1),
                        min_size=1,
                    )
                )
            )
        )
    return CrashBudget(max_crashes=max_crashes, pids=pids)

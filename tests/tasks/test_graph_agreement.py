"""E12: two-process NCSAC over graphs — connectivity is the whole story."""

import pytest

from repro.core import characterize
from repro.core.characterization import Verdict
from repro.core.protocol_synthesis import synthesize_iis_protocol
from repro.core.solvability import SolvabilityStatus, solve_task
from repro.runtime.scheduler import RandomSchedule
from repro.tasks.graph_agreement import (
    cycle_graph,
    disjoint_edges,
    graph_agreement_task,
    graphs_for_experiments,
    path_graph,
    star_graph,
    wheel_graph,
)
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex


class TestBuilders:
    def test_path(self):
        g = path_graph(3)
        assert g.face_count(1) == 3 and len(g.vertices) == 4

    def test_path_needs_edge(self):
        with pytest.raises(ValueError):
            path_graph(0)

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.face_count(1) == 5 and len(g.vertices) == 5
        assert g.euler_characteristic() == 0

    def test_cycle_minimum(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star_and_wheel(self):
        assert len(star_graph(4).vertices) == 5
        wheel = wheel_graph(4)
        assert wheel.face_count(1) == 8  # 4 rim + 4 spokes

    def test_task_rejects_2_complex(self):
        triangle = SimplicialComplex.from_vertices(
            [Vertex(0, i) for i in range(3)]
        )
        with pytest.raises(ValueError):
            graph_agreement_task(triangle)


class TestTaskSemantics:
    def test_solo_pins_own_vertex(self):
        task = graph_agreement_task(path_graph(2))
        solo = Simplex([Vertex(0, 1)])
        assert task.candidate_decisions(solo, 0) == [Vertex(0, 1)]

    def test_outputs_adjacent_or_equal(self):
        task = graph_agreement_task(path_graph(2))
        for top in task.output_complex.maximal_simplices:
            a, b = [v.payload for v in top.sorted_vertices()]
            assert abs(a - b) <= 1


class TestSolvability:
    @pytest.mark.parametrize(
        "name,graph,expected",
        graphs_for_experiments(),
        ids=[g[0] for g in graphs_for_experiments()],
    )
    def test_fixture_levels(self, name, graph, expected):
        result = characterize(
            graph_agreement_task(graph), max_rounds=2, node_budget=2_000_000
        )
        if expected is None:
            assert result.verdict is Verdict.UNSOLVABLE
            assert result.certificate.kind == "connectivity"
        else:
            assert result.verdict is Verdict.SOLVABLE
            assert result.rounds == expected

    def test_cycle_is_solvable_for_two_processes(self):
        """The finding recorded in the module docs: for n=1 the cycle's
        1-hole is NOT an obstruction — walks detour around it."""
        result = solve_task(graph_agreement_task(cycle_graph(4)), max_rounds=1)
        assert result.status is SolvabilityStatus.SOLVABLE

    def test_synthesized_protocol_on_cycle(self):
        graph = cycle_graph(5)
        task = graph_agreement_task(graph)
        result = solve_task(task, max_rounds=1)
        protocol = synthesize_iis_protocol(result)
        for seed in range(15):
            decisions = protocol.run_and_validate(
                task, {0: 0, 1: 3}, RandomSchedule(seed)
            )
            a, b = decisions[0], decisions[1]
            assert a == b or b in {(a - 1) % 5, (a + 1) % 5}

    def test_synthesized_protocol_on_path(self):
        graph = path_graph(3)
        task = graph_agreement_task(graph)
        result = solve_task(task, max_rounds=1)
        protocol = synthesize_iis_protocol(result)
        for seed in range(15):
            decisions = protocol.run_and_validate(
                task, {0: 0, 1: 3}, RandomSchedule(seed)
            )
            assert abs(decisions[0] - decisions[1]) <= 1

"""The participating-set task: one-shot IS as a task (Lemma 3.2's probe)."""

import pytest

from repro.core.protocol_synthesis import synthesize_iis_protocol
from repro.core.solvability import SolvabilityStatus, solve_task
from repro.runtime.immediate_snapshot import check_immediate_snapshot_axioms
from repro.runtime.scheduler import RandomSchedule, enumerate_executions
from repro.tasks.participating_set import participating_set_task
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import fubini
from repro.topology.vertex import Vertex


class TestTaskShape:
    def test_output_tops_are_fubini_many(self):
        task = participating_set_task(3)
        assert len(task.output_complex.maximal_simplices) == fubini(3)

    def test_solo_must_output_own_singleton(self):
        task = participating_set_task(3)
        solo = Simplex([Vertex(1, 1)])
        candidates = task.candidate_decisions(solo, 1)
        assert candidates == [Vertex(1, frozenset({1}))]

    def test_needs_at_least_one_process(self):
        with pytest.raises(ValueError):
            participating_set_task(0)


class TestSolvability:
    @pytest.mark.parametrize("n", [2, 3])
    def test_unsolvable_at_round_zero(self, n):
        result = solve_task(participating_set_task(n), max_rounds=0)
        assert result.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND

    @pytest.mark.parametrize("n", [2, 3])
    def test_solvable_at_round_one(self, n):
        result = solve_task(participating_set_task(n), max_rounds=1)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 1

    def test_synthesized_protocol_outputs_are_is_views(self):
        n = 3
        task = participating_set_task(n)
        result = solve_task(task, max_rounds=1)
        protocol = synthesize_iis_protocol(result)
        inputs = {pid: pid for pid in range(n)}
        for seed in range(20):
            decisions = protocol.run_and_validate(task, inputs, RandomSchedule(seed))
            # Decisions are sets of pids satisfying the IS axioms.
            views = {
                pid: frozenset((member, member) for member in value)
                for pid, value in decisions.items()
            }
            check_immediate_snapshot_axioms(views)

    def test_every_interleaving_two_processes(self):
        task = participating_set_task(2)
        result = solve_task(task, max_rounds=1)
        protocol = synthesize_iis_protocol(result)
        inputs = {0: 0, 1: 1}
        outcomes = set()
        for run in enumerate_executions(protocol.factories(inputs), 2):
            assert task.validate_outputs(inputs, run.decisions)
            outcomes.add(tuple(sorted(run.decisions.items())))
        # All three ordered partitions of two processes are realizable.
        assert len(outcomes) == 3

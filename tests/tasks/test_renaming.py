"""E9: the (2p−1)-renaming protocol over iterated immediate snapshots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.scheduler import (
    RandomSchedule,
    RoundRobinSchedule,
    Scheduler,
    enumerate_executions,
)
from repro.tasks.renaming import RenamingProtocol, _nth_free_name, renaming_task


class TestFreeNameHelper:
    def test_no_taken(self):
        assert _nth_free_name(1, set()) == 1
        assert _nth_free_name(3, set()) == 3

    def test_skips_taken(self):
        assert _nth_free_name(1, {1, 2}) == 3
        assert _nth_free_name(2, {1, 3}) == 4


class TestProtocol:
    def test_distinct_ids_required(self):
        with pytest.raises(ValueError):
            RenamingProtocol({0: 5, 1: 5})

    def test_solo_gets_name_one(self):
        protocol = RenamingProtocol({0: 42})
        names = protocol.run()
        assert names == {0: 1}

    def test_round_robin_two_processes(self):
        protocol = RenamingProtocol({0: 10, 1: 20})
        names = protocol.run()
        protocol.validate(names)

    def test_all_interleavings_two_processes(self):
        protocol = RenamingProtocol({0: 10, 1: 20})
        count = 0
        for result in enumerate_executions(protocol.factories(), 2, max_depth=80):
            count += 1
            names = dict(result.decisions)
            protocol.validate(names, participants=2)
            assert set(names.values()) <= {1, 2, 3}  # 2p-1 = 3
        assert count > 1

    def test_all_interleavings_with_crash(self):
        protocol = RenamingProtocol({0: 10, 1: 20})
        for result in enumerate_executions(
            protocol.factories(), 2, max_depth=80, max_crashes=1
        ):
            names = dict(result.decisions)
            if names:
                protocol.validate(names, participants=2)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_schedules_three_processes(self, seed):
        protocol = RenamingProtocol({0: 7, 1: 3, 2: 11})
        scheduler = Scheduler(protocol.factories(), 3)
        result = scheduler.run(RandomSchedule(seed), max_steps=10_000)
        names = dict(result.decisions)
        protocol.validate(names, participants=3)
        assert max(names.values()) <= 5  # 2·3 − 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_schedules_five_processes(self, seed):
        ids = {0: 100, 1: 50, 2: 75, 3: 10, 4: 99}
        protocol = RenamingProtocol(ids)
        scheduler = Scheduler(protocol.factories(), 5)
        result = scheduler.run(RandomSchedule(seed), max_steps=50_000)
        names = dict(result.decisions)
        protocol.validate(names, participants=5)
        assert max(names.values()) <= 9  # 2·5 − 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sets(st.integers(0, 2), max_size=2),
    )
    def test_crashy_runs_still_rename_survivors(self, seed, crash):
        protocol = RenamingProtocol({0: 7, 1: 3, 2: 11})
        scheduler = Scheduler(protocol.factories(), 3)
        result = scheduler.run(
            RandomSchedule(seed, crash_pids=sorted(crash)), max_steps=10_000
        )
        names = dict(result.decisions)
        if names:
            values = list(names.values())
            assert len(set(values)) == len(values)
            assert all(1 <= v <= 5 for v in values)

    def test_name_independence_of_id_magnitudes(self):
        # Same structure, different id values: same name multiset under the
        # same deterministic schedule (the algorithm uses ids only via ranks).
        a = RenamingProtocol({0: 1, 1: 2, 2: 3}).run(RoundRobinSchedule())
        b = RenamingProtocol({0: 10, 1: 200, 2: 3000}).run(RoundRobinSchedule())
        assert sorted(a.values()) == sorted(b.values())


class TestOverIIS:
    """E9's headline: renaming over iterated immediate snapshots, by running
    the register algorithm through the Figure 2 emulation (Prop 4.1)."""

    def test_round_robin(self):
        protocol = RenamingProtocol({0: 10, 1: 20, 2: 30})
        names = protocol.run(over_iis=True)
        protocol.validate(names, participants=3)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_schedules(self, seed):
        protocol = RenamingProtocol({0: 7, 1: 3, 2: 11})
        scheduler = Scheduler(protocol.factories(over_iis=True), 3)
        result = scheduler.run(RandomSchedule(seed), max_steps=100_000)
        names = dict(result.decisions)
        protocol.validate(names, participants=3)
        assert max(names.values()) <= 5

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sets(st.integers(0, 2), max_size=1),
    )
    def test_crashy_schedules(self, seed, crash):
        protocol = RenamingProtocol({0: 7, 1: 3, 2: 11})
        scheduler = Scheduler(protocol.factories(over_iis=True), 3)
        result = scheduler.run(
            RandomSchedule(seed, crash_pids=sorted(crash)), max_steps=100_000
        )
        names = dict(result.decisions)
        if names:
            values = list(names.values())
            assert len(set(values)) == len(values)
            assert all(1 <= v <= 5 for v in values)


class TestTaskObject:
    def test_builds(self):
        task = renaming_task(2)
        assert task.n_processes == 2

    def test_too_small_name_space_rejected(self):
        with pytest.raises(ValueError):
            renaming_task(3, name_space=[1, 2])

    def test_distinctness_encoded(self):
        task = renaming_task(2)
        from repro.topology.simplex import Simplex
        from repro.topology.vertex import Vertex

        top = Simplex([Vertex(0, 0), Vertex(1, 1)])
        for tuple_ in task.allowed_outputs(top):
            names = [v.payload for v in tuple_]
            assert len(set(names)) == len(names)

    def test_trivially_solvable_without_symmetry(self):
        # Documented: the Δ formalism cannot express index-independence, so
        # the task object is solvable at round 0 (decide a name by pid).
        from repro.core.solvability import SolvabilityStatus, solve_task

        result = solve_task(renaming_task(2), max_rounds=0)
        assert result.status is SolvabilityStatus.SOLVABLE

"""Structural tests for the task-zoo builders."""

import pytest

from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    consensus_task,
    constant_task,
    identity_task,
    set_consensus_task,
)
from repro.tasks.approximate_agreement import predicted_rounds
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex


class TestConsensusBuilder:
    def test_binary_two_processes_shape(self):
        task = binary_consensus_task(2)
        # Input complex: the 4-cycle of assignments.
        assert task.input_complex.f_vector() == (4, 4)
        # Output complex: two disjoint edges.
        assert task.output_complex.f_vector() == (4, 2)
        assert not task.output_complex.is_connected()

    def test_input_complex_connected(self):
        assert binary_consensus_task(2).input_complex.is_connected()
        assert binary_consensus_task(3).input_complex.is_connected()

    def test_multivalued(self):
        task = consensus_task(2, ("x", "y", "z"))
        assert task.input_complex.face_count(1) == 9

    def test_single_value_rejected(self):
        with pytest.raises(ValueError):
            consensus_task(2, ("only",))

    def test_zero_processes_rejected(self):
        with pytest.raises(ValueError):
            consensus_task(0)

    def test_validity_on_mixed_edge(self):
        task = binary_consensus_task(2)
        edge = Simplex([Vertex(0, 0), Vertex(1, 1)])
        allowed = task.allowed_outputs(edge)
        decided_values = {frozenset(v.payload for v in t) for t in allowed}
        assert decided_values == {frozenset({0}), frozenset({1})}


class TestSetConsensusBuilder:
    def test_output_complex_is_k_diverse(self):
        task = set_consensus_task(4, 2)
        for top in task.output_complex.maximal_simplices:
            assert len({v.payload for v in top}) <= 2

    def test_input_is_single_simplex(self):
        task = set_consensus_task(3, 2)
        assert len(task.input_complex.maximal_simplices) == 1

    def test_faces_inherit_validity(self):
        task = set_consensus_task(3, 2)
        face = Simplex([Vertex(0, 0), Vertex(2, 2)])
        for tuple_ in task.allowed_outputs(face):
            assert {v.payload for v in tuple_} <= {0, 2}


class TestApproximateAgreementBuilder:
    def test_grid_adjacency(self):
        task = approximate_agreement_task(2, 4)
        for top in task.output_complex.maximal_simplices:
            values = [v.payload for v in top]
            assert max(values) - min(values) <= 1

    def test_equal_inputs_pin_output(self):
        task = approximate_agreement_task(2, 4)
        same = Simplex([Vertex(0, 4), Vertex(1, 4)])
        allowed = task.allowed_outputs(same)
        assert allowed == frozenset({same})

    def test_validity_range(self):
        task = approximate_agreement_task(2, 4)
        mixed = Simplex([Vertex(0, 0), Vertex(1, 4)])
        for tuple_ in task.allowed_outputs(mixed):
            for v in tuple_:
                assert 0 <= v.payload <= 4

    def test_resolution_must_be_positive(self):
        with pytest.raises(ValueError):
            approximate_agreement_task(2, 0)

    @pytest.mark.parametrize(
        "resolution,expected", [(1, 0), (2, 1), (3, 1), (4, 2), (9, 2), (10, 3), (27, 3)]
    )
    def test_predicted_rounds(self, resolution, expected):
        assert predicted_rounds(resolution) == expected


class TestTrivialBuilders:
    def test_identity_delta_is_identity(self):
        task = identity_task(2)
        for input_simplex in task.input_complex.simplices():
            assert task.allowed_outputs(input_simplex) == frozenset({input_simplex})

    def test_constant_single_output(self):
        task = constant_task(2, constant="fixed")
        assert len(task.output_complex.vertices) == 2
        assert all(v.payload == "fixed" for v in task.output_complex.vertices)

"""CLI smoke tests (direct invocation, no subprocess)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_zoo(self, capsys):
        assert main(["zoo", "--max-rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "unsolvable" in out and "solvable" in out
        assert "sperner" in out

    def test_sds(self, capsys):
        assert main(["sds", "-n", "1", "-b", "2"]) == 0
        out = capsys.readouterr().out
        assert "f-vector          : (10, 9)" in out

    def test_sds_export_json(self, tmp_path, capsys):
        target = tmp_path / "complex.json"
        assert main(["sds", "-n", "1", "-b", "1", "--out", str(target)]) == 0
        from repro.analysis.export import complex_from_json

        restored = complex_from_json(target.read_text())
        assert len(restored.maximal_simplices) == 3

    def test_sds_export_off(self, tmp_path):
        target = tmp_path / "complex.off"
        assert (
            main(["sds", "-n", "2", "-b", "1", "--out", str(target), "--format", "off"])
            == 0
        )
        assert target.read_text().startswith("OFF")

    def test_sds_export_dot(self, tmp_path):
        target = tmp_path / "complex.dot"
        assert (
            main(["sds", "-n", "1", "-b", "1", "--out", str(target), "--format", "dot"])
            == 0
        )
        assert target.read_text().startswith("graph")

    @pytest.mark.parametrize(
        "schedule", ["round-robin", "random", "starve", "contend"]
    )
    def test_emulate(self, capsys, schedule):
        assert main(["emulate", "-p", "2", "-k", "1", "--schedule", schedule]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_rename_native(self, capsys):
        assert main(["rename", "-p", "2"]) == 0
        assert "registers" in capsys.readouterr().out

    def test_rename_over_iis(self, capsys):
        assert main(["rename", "-p", "2", "--over-iis"]) == 0
        assert "IIS" in capsys.readouterr().out

    def test_narrate(self, capsys):
        assert main(["narrate", "-p", "2", "-b", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "WriteRead" in out
        assert "ordered partitions per memory" in out

    def test_converge(self, capsys):
        assert main(["converge", "-n", "1", "-m", "1"]) == 0
        assert "simplex of A" in capsys.readouterr().out

    def test_converge_chromatic(self, capsys):
        assert main(["converge", "-n", "1", "-m", "1", "--chromatic"]) == 0
        assert "Theorem 5.1" in capsys.readouterr().out


class TestModelChecker:
    def test_mc_healthy_run(self, capsys):
        assert main(["mc", "-p", "2", "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "model checking emulation(p=2,k=1)" in out
        assert "✓" in out

    def test_mc_compare_reports_reduction(self, capsys):
        assert main(["mc", "-p", "2", "-k", "1", "--compare", "--crashes", "1"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out and "agree ✓" in out

    def test_mc_iis_scenario(self, capsys):
        assert main(["mc", "--scenario", "iis", "-p", "3", "-r", "1"]) == 0
        assert "iis(p=3,r=1)" in capsys.readouterr().out

    def test_mc_mutation_full_loop(self, tmp_path, capsys):
        replay = tmp_path / "cex.json"
        report = tmp_path / "report.json"
        code = main(
            [
                "mc", "-p", "2", "-k", "1",
                "--mutate", "skip-freshness",
                "--save-replay", str(replay),
                "--report", str(report),
            ]
        )
        assert code == 1  # a violation is a failing exit
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "minimized" in out
        assert replay.exists() and report.exists()

        assert main(["mc", "--replay", str(replay)]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_mc_mutate_requires_emulation(self, capsys):
        assert main(["mc", "--scenario", "iis", "--mutate", "skip-freshness"]) == 2


class TestObservability:
    def test_trace_then_stats(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert main(["trace", "--out", str(target)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and str(target) in out

        assert main(["stats", str(target)]) == 0
        rendered = capsys.readouterr().out
        # All three span families of the acceptance scenario ...
        assert "sched.run" in rendered
        assert "sds.build" in rendered
        assert "kernel.search" in rendered
        assert "mc.explore" in rendered
        # ... and the headline counters.
        assert "intern.hits{table=vertices}" in rendered
        assert "kernel.backjumps" in rendered
        assert "mc.cache_hits" in rendered

    def test_trace_to_stdout_is_schema_valid(self, capsys):
        from repro.obs.export import load_capture_jsonl

        assert main(["trace", "-p", "2", "--skip-mc", "--out", "-"]) == 0
        document = load_capture_jsonl(capsys.readouterr().out)
        assert {"sched.run", "sds.build", "kernel.compile"} <= document.span_names()

    def test_stats_rejects_malformed_capture(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n')
        assert main(["stats", str(bad)]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_stats_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestCache:
    def test_info_warm_clear_cycle(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SDS_CACHE_DIR", str(tmp_path))
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "enabled" in out and "entries    : 0" in out

        assert main(["cache", "warm", "--n", "2", "--b", "2"]) == 0
        assert "built (169 tops" in capsys.readouterr().out
        assert main(["cache", "warm", "--n", "2", "--b", "2"]) == 0
        assert "hit (169 tops" in capsys.readouterr().out

        assert main(["cache", "info"]) == 0
        assert "entries    : 1" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cache file" in capsys.readouterr().out

    def test_disabled_cache(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SDS_CACHE_DIR", "")
        assert main(["cache", "info"]) == 0
        assert "disabled" in capsys.readouterr().out
        assert main(["cache", "warm", "--n", "1", "--b", "1"]) == 0
        captured = capsys.readouterr()
        assert "built-unstored" in captured.out
        assert "not persisted" in captured.err


class TestConform:
    def test_skip_cell_exits_zero(self, capsys):
        assert main(["conform", "consensus", "2", "--max-rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "SKIP" in out and "unsolvable" in out

    def test_pass_cell_reports_backends(self, capsys):
        assert main(
            ["conform", "consensus", "2", "--model", "t_resilient(0)"]
        ) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "iis:dpor+crashes" in out and "levels:dpor+crashes" in out

    def test_mutated_cell_fails_with_replay(self, tmp_path, capsys):
        code = main(
            [
                "conform", "consensus", "2",
                "--model", "t_resilient(0)",
                "--mutate", "0,0",
                "--replay-dir", str(tmp_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "Δ-compliant" in out
        assert "replay verified" in out
        assert list(tmp_path.glob("conform-*.json"))

    def test_self_test_exits_zero(self, capsys):
        assert main(["conform", "--self-test"]) == 0
        out = capsys.readouterr().out
        assert "self-test OK" in out

    def test_bad_mutate_spec(self, capsys):
        code = main(
            ["conform", "consensus", "2", "--mutate", "banana"]
        )
        assert code == 2
        assert "I,J" in capsys.readouterr().err

    def test_no_task_no_flags(self, capsys):
        assert main(["conform"]) == 2
        assert "give a task" in capsys.readouterr().err

    def test_unknown_task_is_a_usage_error(self, capsys):
        assert main(["conform", "frobnicate", "2"]) == 2
        assert "conform:" in capsys.readouterr().err

    def test_json_output_parses(self, capsys):
        import json as json_module

        assert main(
            ["conform", "consensus", "2", "--max-rounds", "2", "--json"]
        ) == 0
        document = json_module.loads(capsys.readouterr().out)
        assert document["status"] == "SKIP"

    def test_smoke_sweep_summary(self, capsys):
        assert main(["conform", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "2 PASS, 1 SKIP, 0 FAIL" in out

"""One test per paper claim — the reproduction's front door.

Each test is a concise, executable statement of one lemma / proposition /
theorem of Borowsky–Gafni (PODC 1997), built from the library's public
machinery.  Deeper variants live in the per-module test files; this file is
the map from the paper's text to evidence.
"""

from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex, vertices_of


def color_simplex(n):
    return SimplicialComplex.from_vertices(vertices_of(range(n + 1)))


class TestSection2:
    def test_lemma_2_1_simplicial_approximation(self):
        """For k large enough, a carrier-preserving simplicial map
        Bsd^k(s^n) → A(s^n) exists (here: exhibited and validated)."""
        from repro.core.approximation import (
            carrier_preserving_approximation,
            iterated_with_embedding,
        )

        target = iterated_with_embedding(color_simplex(2), 1, "sds")
        result = carrier_preserving_approximation(
            target.subdivision, target.embedding, source_kind="bsd", max_k=4
        )
        result.simplicial_map.validate(
            color_preserving=False,
            carriers=(result.source.subdivision.carrier, target.subdivision.carrier),
        )

    def test_lemma_2_2_no_holes(self):
        """A subdivided simplex has no hole of any dimension."""
        from repro.topology.holes import verify_subdivided_simplex_has_no_holes
        from repro.topology.standard_chromatic import (
            iterated_standard_chromatic_subdivision,
        )

        sds = iterated_standard_chromatic_subdivision(color_simplex(2), 2)
        verify_subdivided_simplex_has_no_holes(sds.complex, 2)


class TestSection3:
    def test_lemma_3_1_koenig(self):
        """Wait-free solvable ⇒ bounded wait-free solvable; the bound is
        computable from the execution tree."""
        from repro.core.koenig import koenig_bound
        from repro.core.protocol_synthesis import synthesize_iis_protocol
        from repro.core.solvability import solve_task
        from repro.tasks import approximate_agreement_task

        result = solve_task(approximate_agreement_task(2, 3), max_rounds=1)
        protocol = synthesize_iis_protocol(result)
        bound = koenig_bound(protocol.factories({0: 0, 1: 3}), 2)
        assert bound.bound == result.rounds == 1

    def test_lemma_3_2_is_complex_is_sds(self):
        """The one-shot immediate snapshot complex IS the standard
        chromatic subdivision — from the model and from raw registers."""
        from repro.core.protocol_complex import (
            levels_is_complex_from_runtime,
            one_shot_is_complex,
        )
        from repro.topology.standard_chromatic import (
            standard_chromatic_subdivision,
        )

        inputs = {0: "a", 1: "b", 2: "c"}
        base = SimplicialComplex(
            [Simplex(Vertex(p, v) for p, v in inputs.items())]
        )
        sds = standard_chromatic_subdivision(base)
        assert one_shot_is_complex(inputs) == sds.complex
        assert levels_is_complex_from_runtime({0: "a", 1: "b"}) is not None

    def test_lemma_3_3_iterated(self):
        """The b-shot IIS complex is SDS^b."""
        from repro.core.protocol_complex import iis_complex_operational
        from repro.topology.simplex import Simplex
        from repro.topology.standard_chromatic import (
            iterated_standard_chromatic_subdivision,
        )

        inputs = {0: "a", 1: "b"}
        base = SimplicialComplex(
            [Simplex(Vertex(p, v) for p, v in inputs.items())]
        )
        assert (
            iis_complex_operational(inputs, 3)
            == iterated_standard_chromatic_subdivision(base, 3).complex
        )

    def test_section_3_4_restriction_is_strict(self):
        """Immediate snapshot is a strict restriction of atomic snapshot:
        fewer executions, and only the restriction is a pseudomanifold."""
        from repro.core.protocol_complex import (
            one_round_snapshot_complex,
            one_shot_is_complex,
        )

        inputs = {0: "a", 1: "b", 2: "c"}
        snapshot = one_round_snapshot_complex(inputs)
        immediate = one_shot_is_complex(inputs)
        assert all(t in snapshot for t in immediate.maximal_simplices)
        assert not snapshot.is_pseudomanifold()
        assert immediate.is_pseudomanifold()

    def test_proposition_3_1_characterization(self):
        """Solvable ⇔ a color/carrier/Δ-respecting map SDS^b(I) → O: SAT
        side exhibited and executed; UNSAT side exhausted per level."""
        from repro.core.solvability import SolvabilityStatus, solve_task
        from repro.core.protocol_synthesis import synthesize_iis_protocol
        from repro.tasks import approximate_agreement_task, binary_consensus_task

        solvable = solve_task(approximate_agreement_task(2, 3), max_rounds=1)
        assert solvable.status is SolvabilityStatus.SOLVABLE
        synthesize_iis_protocol(solvable).run_and_validate(
            approximate_agreement_task(2, 3), {0: 0, 1: 3}
        )
        unsolvable = solve_task(binary_consensus_task(2), max_rounds=2)
        assert unsolvable.status is SolvabilityStatus.UNSOLVABLE_UP_TO_BOUND


class TestSection4:
    def test_proposition_4_1_emulation(self):
        """Figure 2 implements Figure 1: every emulated snapshot passes the
        atomic-snapshot legality conditions."""
        from repro.core.emulation import EmulationHarness
        from repro.runtime.scheduler import RandomSchedule

        for seed in range(10):
            trace = EmulationHarness({0: "a", 1: "b", 2: "c"}, 2).run(
                RandomSchedule(seed, block_probability=0.5)
            )
            trace.check_legality()

    def test_section_4_nonblocking_remark(self):
        """Per-operation cost grows with contention; solo ops cost 1."""
        from repro.core.emulation import EmulationHarness
        from repro.runtime.scheduler import RoundRobinSchedule

        solo = EmulationHarness({0: "a"}, 2).run(RoundRobinSchedule())
        assert all(c == 1 for _p, _k, c in solo.memories_per_op)


class TestSection5:
    def test_theorem_5_1(self):
        """Any chromatic subdivision is the image of some SDS^k under a
        color- and carrier-preserving simplicial map."""
        from repro.core.approximation import iterated_with_embedding
        from repro.core.convergence import theorem_5_1_witness
        from repro.core.solvability import SolvabilityStatus

        target = iterated_with_embedding(color_simplex(1), 2, "sds")
        witness = theorem_5_1_witness(target.subdivision, max_rounds=3)
        assert witness.status is SolvabilityStatus.SOLVABLE
        assert witness.decision_map.is_color_preserving()

    def test_corollary_5_2_any_subdivision(self):
        """The characterization holds with arbitrary chromatic subdivisions
        as outputs — approximate agreement's output path is one."""
        from repro.core.solvability import SolvabilityStatus, solve_task
        from repro.tasks import approximate_agreement_task

        result = solve_task(approximate_agreement_task(2, 9), max_rounds=2)
        assert result.status is SolvabilityStatus.SOLVABLE
        assert result.rounds == 2  # ⌈log₃ 9⌉

    def test_corollary_5_4_ncsass(self):
        """Non-chromatic simplex agreement over a subdivided simplex is
        wait-free solvable — by running the protocol."""
        from repro.core.approximation import iterated_with_embedding
        from repro.core.convergence import solve_ncsass
        from repro.runtime.scheduler import RandomSchedule

        target = iterated_with_embedding(color_simplex(2), 1, "sds")
        protocol = solve_ncsass(target.subdivision, target.embedding, max_k=3)
        outputs = protocol.run(RandomSchedule(3))
        protocol.validate(outputs)


class TestSection1Benchmarks:
    def test_set_consensus_impossible(self):
        """(n+1, n)-set consensus is wait-free unsolvable — by the
        elementary Sperner route the paper credits to [7]."""
        from repro.core import characterize
        from repro.core.characterization import Verdict
        from repro.tasks import set_consensus_task

        verdict = characterize(set_consensus_task(3, 2))
        assert verdict.verdict is Verdict.UNSOLVABLE
        assert verdict.certificate.kind == "sperner"

    def test_consensus_impossible(self):
        """Consensus (FLP in topological clothing): unsolvable for all b."""
        from repro.core import characterize
        from repro.core.characterization import Verdict
        from repro.tasks import binary_consensus_task

        verdict = characterize(binary_consensus_task(2))
        assert verdict.verdict is Verdict.UNSOLVABLE

    def test_renaming_possible(self):
        """(2p−1)-renaming is wait-free solvable — natively and over IIS
        via the main theorem's emulation."""
        from repro.tasks.renaming import RenamingProtocol

        protocol = RenamingProtocol({0: 10, 1: 20, 2: 30})
        protocol.validate(protocol.run(), participants=3)
        protocol.validate(protocol.run(over_iis=True), participants=3)

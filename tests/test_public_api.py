"""Public-surface smoke tests: every advertised name imports and exists."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.topology",
    "repro.runtime",
    "repro.core",
    "repro.tasks",
    "repro.analysis",
    "repro.cli",
    "repro.service",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} advertised but missing"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_shape():
    """The README quickstart's names exist and do what it says."""
    from repro import Task, characterize, solve_task

    assert callable(characterize)
    assert callable(solve_task)
    assert Task is not None


def test_docstrings_everywhere():
    """Every public module and its public callables carry docstrings."""
    import inspect

    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

"""Barycentric subdivision and the canonical map from SDS."""

import pytest
from math import factorial

from repro.topology.barycentric import (
    barycenter_vertex,
    barycentric_subdivision,
    face_of_barycenter,
    iterated_barycentric_subdivision,
    sds_to_bsd_map,
)
from repro.topology.complex import SimplicialComplex
from repro.topology.holes import betti_numbers_mod2
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import standard_chromatic_subdivision
from repro.topology.vertex import Vertex, vertices_of


def base(n):
    return SimplicialComplex.from_vertices(vertices_of(range(n + 1)))


class TestOneLevel:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_top_count_is_factorial(self, n):
        bsd = barycentric_subdivision(base(n))
        assert len(bsd.complex.maximal_simplices) == factorial(n + 1)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_vertex_count_is_face_count(self, n):
        bsd = barycentric_subdivision(base(n))
        assert len(bsd.complex.vertices) == 2 ** (n + 1) - 1

    @pytest.mark.parametrize("n", [1, 2])
    def test_valid_subdivision(self, n):
        barycentric_subdivision(base(n)).validate()

    def test_dimension_coloring_is_proper(self):
        # The classic fact: Bsd colored by carrier dimension is chromatic.
        bsd = barycentric_subdivision(base(2))
        assert bsd.complex.is_chromatic()
        for vertex in bsd.complex.vertices:
            assert vertex.color == face_of_barycenter(vertex).dimension

    def test_carriers(self):
        bsd = barycentric_subdivision(base(2))
        for vertex in bsd.complex.vertices:
            assert bsd.carrier(vertex) == face_of_barycenter(vertex)

    @pytest.mark.parametrize("n", [1, 2])
    def test_no_holes(self, n):
        bsd = barycentric_subdivision(base(n))
        assert all(b == 0 for b in betti_numbers_mod2(bsd.complex))

    def test_barycenter_vertex_roundtrip(self):
        face = Simplex(vertices_of(range(2)))
        assert face_of_barycenter(barycenter_vertex(face)) == face

    def test_face_of_barycenter_rejects_plain_vertex(self):
        with pytest.raises(TypeError):
            face_of_barycenter(Vertex(0, "plain"))

    def test_gluing_two_triangles(self):
        shared = vertices_of(range(2))
        t1 = Simplex(shared + [Vertex(2, "L")])
        t2 = Simplex(shared + [Vertex(2, "R")])
        bsd = barycentric_subdivision(SimplicialComplex([t1, t2]))
        bsd.validate()
        assert len(bsd.complex.maximal_simplices) == 12


class TestIterated:
    def test_counts(self):
        bsd2 = iterated_barycentric_subdivision(base(1), 2)
        assert len(bsd2.complex.maximal_simplices) == 4

    def test_round_zero(self):
        assert iterated_barycentric_subdivision(base(1), 0).complex == base(1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            iterated_barycentric_subdivision(base(1), -1)

    def test_iterated_is_subdivision(self):
        iterated_barycentric_subdivision(base(2), 2).validate()


class TestSdsToBsd:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_canonical_map_is_simplicial_and_carrier_preserving(self, n):
        b = base(n)
        sds = standard_chromatic_subdivision(b)
        bsd = barycentric_subdivision(b)
        mapping = sds_to_bsd_map(sds, bsd)  # validates internally
        assert mapping.is_simplicial()
        for vertex in sds.complex.vertices:
            assert bsd.carrier(mapping(vertex)) == sds.carrier(vertex)

    def test_mismatched_bases_rejected(self):
        sds = standard_chromatic_subdivision(base(1))
        bsd = barycentric_subdivision(base(2))
        with pytest.raises(ValueError):
            sds_to_bsd_map(sds, bsd)

    def test_blocks_collapse_to_one_barycenter(self):
        # Vertices of one concurrency block share a view, hence an image.
        b = base(2)
        sds = standard_chromatic_subdivision(b)
        bsd = barycentric_subdivision(b)
        mapping = sds_to_bsd_map(sds, bsd)
        from repro.topology.standard_chromatic import central_simplex

        center = central_simplex(sds)
        images = {mapping(v) for v in center}
        assert len(images) == 1  # all map to the barycenter of the base

"""Color actions and equivariance of the core constructions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.barycentric import barycentric_subdivision
from repro.topology.chromatic import (
    chromatic_map_signature,
    color_classes,
    is_color_equivariant_construction,
    rainbow_simplices,
    relabel_colors,
)
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
    standard_chromatic_subdivision,
)
from repro.topology.vertex import Vertex, vertices_of


def base(n):
    return SimplicialComplex.from_vertices(vertices_of(range(n + 1)))


class TestBasics:
    def test_color_classes(self):
        sds = standard_chromatic_subdivision(base(2))
        classes = color_classes(sds.complex)
        assert set(classes) == {0, 1, 2}
        assert all(len(members) == 4 for members in classes.values())

    def test_rainbow_simplices_of_sds(self):
        sds = standard_chromatic_subdivision(base(2))
        # Every top simplex of a chromatic subdivision is rainbow.
        assert len(rainbow_simplices(sds.complex)) == 13

    def test_rainbow_on_mixed_complex(self):
        mixed = SimplicialComplex(
            [Simplex(vertices_of(range(3))), Simplex([Vertex(0, "x")])]
        )
        assert len(rainbow_simplices(mixed)) == 1

    def test_signature(self):
        assert chromatic_map_signature(base(1)) == ((0, 1), (1, 1))


class TestRelabeling:
    def test_simple_swap(self):
        swapped = relabel_colors(base(1), {0: 1, 1: 0})
        assert swapped == base(1)  # payloads None: symmetric simplex

    def test_swap_moves_payload_colors(self):
        c = SimplicialComplex([Simplex([Vertex(0, "a"), Vertex(1, "b")])])
        swapped = relabel_colors(c, {0: 1, 1: 0})
        assert Vertex(1, "a") in swapped.vertices
        assert Vertex(0, "b") in swapped.vertices

    def test_nested_payloads_relabelled(self):
        inner = frozenset({Vertex(0, "x")})
        c = SimplicialComplex([Simplex([Vertex(0, inner)])])
        swapped = relabel_colors(c, {0: 2})
        vertex = next(iter(swapped.vertices))
        assert vertex.color == 2
        assert vertex.payload == frozenset({Vertex(2, "x")})

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError):
            relabel_colors(base(1), {0: 5, 1: 5})

    def test_identity_permutation(self):
        sds = standard_chromatic_subdivision(base(2)).complex
        assert relabel_colors(sds, {}) == sds


class TestEquivariance:
    """The paper's constructions commute with processor relabeling."""

    @pytest.mark.parametrize(
        "permutation", [{0: 1, 1: 0}, {0: 2, 2: 0}, {0: 1, 1: 2, 2: 0}]
    )
    def test_sds_equivariant(self, permutation):
        assert is_color_equivariant_construction(
            lambda k: standard_chromatic_subdivision(k).complex,
            base(2),
            permutation,
        )

    def test_iterated_sds_equivariant(self):
        assert is_color_equivariant_construction(
            lambda k: iterated_standard_chromatic_subdivision(k, 2).complex,
            base(1),
            {0: 1, 1: 0},
        )

    def test_sds_equivariant_with_payloads(self):
        inputs = SimplicialComplex(
            [Simplex([Vertex(0, "a"), Vertex(1, "b"), Vertex(2, "c")])]
        )
        assert is_color_equivariant_construction(
            lambda k: standard_chromatic_subdivision(k).complex,
            inputs,
            {0: 2, 2: 1, 1: 0},
        )


@settings(max_examples=30, deadline=None)
@given(st.permutations([0, 1, 2]))
def test_sds_equivariance_under_all_permutations(perm):
    permutation = {i: perm[i] for i in range(3)}
    assert is_color_equivariant_construction(
        lambda k: standard_chromatic_subdivision(k).complex,
        base(2),
        permutation,
    )


@settings(max_examples=20, deadline=None)
@given(st.permutations([0, 1]))
def test_protocol_complex_equivariance(perm):
    """Relabeling processors before or after running the model agrees."""
    from repro.core.protocol_complex import one_shot_is_complex

    permutation = {i: perm[i] for i in range(2)}
    inputs = {0: "a", 1: "b"}
    relabeled_inputs = {permutation[pid]: val for pid, val in inputs.items()}
    direct = one_shot_is_complex(relabeled_inputs)
    relabeled = relabel_colors(one_shot_is_complex(inputs), permutation)
    assert direct == relabeled

"""Collapse machinery: golden free-face counts, full collapsibility, census laws.

Golden values pin the geometry: the free codim-1 faces of ``SDS(s^n)`` are
exactly the boundary facets (9 for ``s^2``, 52 for ``s^3``), and the greedy
elementary-collapse sequence removes *every* top on ``SDS^b`` of a simplex —
the Benavides–Rajsbaum collapsibility result, witnessed constructively.

The constraint-core census is then checked against its own soundness rule:
an arity >= 3 face is dropped iff some containing top shares its carrier
union (re-verified by brute force), every 2-ary face is kept, tops are
always kept, and switching collapse off reproduces the full face census.
Solvability-preservation is exercised end-to-end in
``tests/core/test_sharded_kernel.py``.
"""

from itertools import combinations

import pytest

from repro.topology.collapse import (
    collapse_sequence,
    core_census,
    free_codim1_faces,
    full_census,
    iter_tops_with_masks,
)
from repro.topology.compact import build_sds_packed
from repro.topology.shards import build_sds_sharded

SIMPLEX = lambda n: (tuple(range(n + 1)), (tuple(range(n + 1)),))  # noqa: E731

# Boundary facet counts of SDS(s^n): the subdivided boundary sphere has
# 3 * Fubini(n) facets per base facet... pinned empirically, these are the
# golden values the geometry implies.
GOLDEN_FREE_FACES = {2: 9, 3: 52}


def packed(n, b):
    return build_sds_packed(*SIMPLEX(n), b)


class TestFreeFaces:
    @pytest.mark.parametrize("n", sorted(GOLDEN_FREE_FACES))
    def test_golden_free_face_counts(self, n):
        free = free_codim1_faces(iter_tops_with_masks(packed(n, 1)))
        assert len(free) == GOLDEN_FREE_FACES[n]

    def test_free_faces_are_in_exactly_one_top(self):
        subdivision = packed(2, 2)
        tops = list(subdivision.tops)
        free = set(free_codim1_faces(iter_tops_with_masks(subdivision)))
        for face in free:
            holders = [t for t in tops if set(face) <= set(t)]
            assert len(holders) == 1

    def test_sharded_and_packed_agree(self):
        sharded = build_sds_sharded(*SIMPLEX(2), 2, shard_size=7)
        assert free_codim1_faces(iter_tops_with_masks(sharded)) == free_codim1_faces(
            iter_tops_with_masks(packed(2, 2))
        )


class TestCollapseSequence:
    @pytest.mark.parametrize(
        "n,b", [(1, 1), (1, 2), (2, 1), (2, 2), (3, 1)], ids=lambda v: str(v)
    )
    def test_sds_of_simplex_fully_collapses(self, n, b):
        subdivision = packed(n, b)
        result = collapse_sequence(list(subdivision.tops))
        assert result["tops_total"] == subdivision.top_count
        assert result["tops_remaining"] == 0
        assert result["remaining_top_indices"] == []

    def test_pair_count_equals_tops_removed(self):
        subdivision = packed(2, 2)
        result = collapse_sequence(list(subdivision.tops))
        assert result["pairs_removed"] == result["tops_total"] - result["tops_remaining"]


class TestCoreCensus:
    def test_matches_brute_force_rule(self):
        subdivision = packed(3, 1)
        masks = subdivision.carrier_masks
        faces, report = core_census(iter_tops_with_masks(subdivision), masks)
        tops = [(top, mask) for top, mask in iter_tops_with_masks(subdivision)]
        # Re-derive by brute force: a proper arity>=3 face is dropped iff
        # SOME containing top has the same carrier union.
        implied: dict[tuple, bool] = {}
        for top, top_mask in tops:
            for arity in range(3, len(top)):
                for sel in combinations(range(len(top)), arity):
                    face = tuple(top[i] for i in sel)
                    union = 0
                    for vid in face:
                        union |= masks[vid]
                    implied[face] = implied.get(face, False) or union == top_mask
        want_kept_3 = sorted(f for f, drop in implied.items() if not drop and len(f) == 3)
        assert faces.get(3, []) == want_kept_3
        assert report.dropped_faces == sum(implied.values())

    def test_every_edge_is_kept(self):
        subdivision = packed(3, 1)
        faces, _ = core_census(
            iter_tops_with_masks(subdivision), subdivision.carrier_masks
        )
        edges = set()
        for top in subdivision.tops:
            for pair in combinations(top, 2):
                edges.add(pair)
        assert set(faces[2]) == edges

    def test_tops_always_kept(self):
        subdivision = packed(3, 1)
        faces, _ = core_census(
            iter_tops_with_masks(subdivision), subdivision.carrier_masks
        )
        assert set(faces[4]) == set(subdivision.tops)

    def test_core_is_strictly_smaller_at_n3(self):
        # The marquee compression: at (n, b) = (3, 1) the census drops every
        # interior triangle whose carrier equals its top's.
        subdivision = packed(3, 1)
        core, core_report = core_census(
            iter_tops_with_masks(subdivision), subdivision.carrier_masks
        )
        full, full_report = full_census(
            iter_tops_with_masks(subdivision), subdivision.carrier_masks
        )
        assert core_report.dropped_faces > 0
        assert core_report.kept_faces < full_report.kept_faces
        assert 0.0 < core_report.dropped_ratio < 1.0
        # Only arity-3 faces differ; edges and tops are identical.
        assert core[2] == full[2]
        assert core[4] == full[4]
        assert len(core.get(3, [])) < len(full[3])

    def test_no_drops_below_n3(self):
        # n = 2 tops are triangles: no proper faces of arity >= 3 exist, so
        # collapse cannot drop anything and core == full.
        subdivision = packed(2, 2)
        core, report = core_census(
            iter_tops_with_masks(subdivision), subdivision.carrier_masks
        )
        full, _ = full_census(
            iter_tops_with_masks(subdivision), subdivision.carrier_masks
        )
        assert report.dropped_faces == 0
        assert core == full

    def test_golden_b1_core_counts(self):
        # SDS(s^3): 75 tops, all C(4,2)-pairs kept, and exactly the
        # non-implied triangles survive.
        subdivision = packed(3, 1)
        faces, report = core_census(
            iter_tops_with_masks(subdivision), subdivision.carrier_masks
        )
        assert len(faces[4]) == 75
        assert report.dropped_faces > 0
        assert report.kept_faces == sum(len(v) for v in faces.values())

    def test_sharded_source_is_identical(self):
        sharded = build_sds_sharded(*SIMPLEX(3), 1, shard_size=13)
        from_sharded, rs = core_census(
            iter_tops_with_masks(sharded), sharded.carrier_masks
        )
        from_packed, rp = core_census(
            iter_tops_with_masks(packed(3, 1)), packed(3, 1).carrier_masks
        )
        assert from_sharded == from_packed
        assert (rs.kept_faces, rs.dropped_faces) == (rp.kept_faces, rp.dropped_faces)

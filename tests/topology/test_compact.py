"""Array-backed complexes, the packed orbit builder, and the disk cache.

Three contracts, pinned differentially against the naive object-graph
engine:

* the packed orbit builder produces exactly the ``SDS^b`` the per-round
  template construction produces — golden top counts on the single-simplex
  grid, plus Hypothesis differentials on random glued chromatic complexes;
* ``CompactComplex.freeze`` / ``thaw`` are exact inverses, with the CSR star
  index agreeing with the object-level star;
* the persistent cache (:mod:`repro.topology.sds_cache`) round-trips packed
  builds byte-faithfully, treats corruption/disabled dirs as misses, and the
  kernel's per-task compiled tables die with ``clear_delta_caches``.
"""

import os

import pytest
from hypothesis import given, settings

from tests.strategies import chromatic_complexes

from repro.topology import sds_cache
from repro.topology.compact import (
    CompactComplex,
    CompactSubdivision,
    build_sds_packed,
)
from repro.topology.complex import SimplicialComplex
from repro.topology.interning import clear_intern_caches
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
)
from repro.topology.subdivision import Subdivision, boundary_restriction
from repro.topology.vertex import Vertex

# f_tops(SDS^b(s^n)): Fubini(n+1)^(sum over levels) — the golden counts the
# paper's Fubini recursion implies for the single-simplex grid.
GOLDEN_TOPS = {(1, 1): 3, (1, 2): 9, (2, 1): 13, (2, 2): 169, (3, 1): 75, (3, 2): 5625}


def simplex_base(n):
    return SimplicialComplex([Simplex(Vertex(pid, f"v{pid}") for pid in range(n + 1))])


@pytest.fixture(scope="module", autouse=True)
def _isolated_sds_cache(tmp_path_factory):
    """Point the persistent cache at a module-private directory.

    Module-scoped (not ``monkeypatch``) so the Hypothesis differentials can
    use it without tripping the function-scoped-fixture health check.
    """
    old = os.environ.get("REPRO_SDS_CACHE_DIR")
    os.environ["REPRO_SDS_CACHE_DIR"] = str(tmp_path_factory.mktemp("sds-cache"))
    yield
    if old is None:
        del os.environ["REPRO_SDS_CACHE_DIR"]
    else:
        os.environ["REPRO_SDS_CACHE_DIR"] = old


class TestPackedBuilder:
    @pytest.mark.parametrize(
        "n,b", sorted(GOLDEN_TOPS), ids=[f"n{n}_b{b}" for n, b in sorted(GOLDEN_TOPS)]
    )
    def test_golden_top_counts(self, n, b):
        compact = build_sds_packed(tuple(range(n + 1)), (tuple(range(n + 1)),), b)
        assert compact.top_count == GOLDEN_TOPS[(n, b)]
        compact.validate_carriers()

    @pytest.mark.parametrize("b", [1, 2])
    def test_orbit_equals_naive_on_simplex_bases(self, b):
        for n in (1, 2, 3):
            base = simplex_base(n)
            orbit = iterated_standard_chromatic_subdivision(base, b, engine="orbit")
            naive = iterated_standard_chromatic_subdivision(base, b, engine="naive")
            assert orbit.complex == naive.complex
            assert orbit.carriers() == naive.carriers()

    @settings(max_examples=25, deadline=None)
    @given(chromatic_complexes())
    def test_orbit_equals_naive_on_random_complexes(self, base):
        orbit = iterated_standard_chromatic_subdivision(base, 1, engine="orbit")
        naive = iterated_standard_chromatic_subdivision(base, 1, engine="naive")
        assert orbit.complex == naive.complex
        assert orbit.carriers() == naive.carriers()

    @settings(max_examples=10, deadline=None)
    @given(chromatic_complexes(max_tops=2))
    def test_restriction_paths_agree(self, base):
        orbit = iterated_standard_chromatic_subdivision(base, 1, engine="orbit")
        naive = iterated_standard_chromatic_subdivision(base, 1, engine="naive")
        assert boundary_restriction(orbit) == boundary_restriction(naive)
        for top in base.maximal_simplices:
            assert orbit.restrict_to_face(top) == naive.restrict_to_face(top)

    def test_lazy_materialization(self):
        base = simplex_base(2)
        compact = build_sds_packed((0, 1, 2), ((0, 1, 2),), 1)
        lazy = Subdivision._from_compact(base, compact)
        assert lazy._complex is None  # nothing forced yet
        assert len(lazy.complex.maximal_simplices) == 13
        assert lazy._carriers is not None
        lazy.validate(chromatic=True)

    def test_rounds_zero_rejected(self):
        with pytest.raises(ValueError):
            build_sds_packed((0, 1), ((0, 1),), 0)

    def test_validate_carriers_catches_corruption(self):
        compact = build_sds_packed((0, 1), ((0, 1),), 1)
        # Empty carrier.
        broken = CompactSubdivision(
            compact.base_colors,
            compact.base_tops,
            compact.rounds,
            compact.levels,
            compact.tops,
            (0,) + compact.carrier_masks[1:],
        )
        with pytest.raises(ValueError, match="empty carrier"):
            broken.validate_carriers()
        # Carrier straddling the base tops (bit outside any top).
        straddling = CompactSubdivision(
            compact.base_colors,
            compact.base_tops,
            compact.rounds,
            compact.levels,
            compact.tops,
            (1 << 7,) + compact.carrier_masks[1:],
        )
        with pytest.raises(ValueError, match="straddles"):
            straddling.validate_carriers()

    def test_payload_round_trip(self):
        compact = build_sds_packed((0, 1, 2), ((0, 1, 2),), 2)
        clone = CompactSubdivision.from_payload(compact.to_payload())
        assert clone.to_payload() == compact.to_payload()
        assert clone.top_count == compact.top_count == 169


class TestFreezeThaw:
    @settings(max_examples=25, deadline=None)
    @given(chromatic_complexes())
    def test_round_trip_identity(self, complex_):
        frozen = CompactComplex.freeze(complex_)
        assert frozen.thaw() == complex_
        assert frozen.vertex_count == len(complex_.vertices)
        assert frozen.top_count == len(complex_.maximal_simplices)
        assert frozen.dimension == complex_.dimension

    @settings(max_examples=25, deadline=None)
    @given(chromatic_complexes())
    def test_colors_and_masks_agree(self, complex_):
        frozen = CompactComplex.freeze(complex_)
        ordered = sorted(complex_.vertices, key=Vertex.sort_key)
        assert list(frozen.colors) == [v.color for v in ordered]
        for t, top in enumerate(frozen.tops()):
            expected = 0
            for i in top:
                expected |= 1 << ordered[i].color
            assert frozen.color_masks[t] == expected

    @settings(max_examples=25, deadline=None)
    @given(chromatic_complexes())
    def test_star_index_agrees_with_object_star(self, complex_):
        frozen = CompactComplex.freeze(complex_)
        ordered = sorted(complex_.vertices, key=Vertex.sort_key)
        tops = [
            Simplex(ordered[i] for i in top) for top in frozen.tops()
        ]
        for vid, vertex in enumerate(ordered):
            star_tops = {tops[t] for t in frozen.star(vid)}
            expected = {
                top for top in complex_.maximal_simplices if vertex in top
            }
            assert star_tops == expected

    def test_thaw_survives_intern_reset(self):
        frozen = CompactComplex.freeze(simplex_base(2))
        clear_intern_caches()
        thawed = frozen.thaw()
        assert thawed == simplex_base(2)


class TestDiskCache:
    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SDS_CACHE_DIR", str(tmp_path))
        compact = build_sds_packed((0, 1, 2), ((0, 1, 2),), 2)
        key = sds_cache.structure_key((0, 1, 2), ((0, 1, 2),), 2)
        assert sds_cache.load(key) is None
        assert sds_cache.store(key, compact)
        loaded = sds_cache.load(key)
        assert loaded is not None
        assert loaded.to_payload() == compact.to_payload()
        info = sds_cache.cache_info()
        assert info["enabled"] and info["entries"] == 1 and info["bytes"] > 0
        assert sds_cache.clear_cache() == 1
        assert sds_cache.load(key) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SDS_CACHE_DIR", str(tmp_path))
        key = sds_cache.structure_key((0, 1), ((0, 1),), 1)
        sds_cache.store(key, build_sds_packed((0, 1), ((0, 1),), 1))
        entry = next(tmp_path.glob("*.sds"))
        entry.write_bytes(b"definitely not marshal data")
        assert sds_cache.load(key) is None
        # A mis-keyed record (stale rename) is also a miss.
        other = sds_cache.structure_key((0, 1, 2), ((0, 1, 2),), 1)
        sds_cache.store(other, build_sds_packed((0, 1, 2), ((0, 1, 2),), 1))
        entry_other = sds_cache._entry_path(tmp_path, other)
        entry_other.rename(sds_cache._entry_path(tmp_path, key))
        assert sds_cache.load(key) is None

    def test_disabled_via_empty_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SDS_CACHE_DIR", "")
        assert sds_cache.cache_dir() is None
        key = sds_cache.structure_key((0, 1), ((0, 1),), 1)
        assert sds_cache.load(key) is None
        assert not sds_cache.store(key, build_sds_packed((0, 1), ((0, 1),), 1))
        assert sds_cache.cache_info()["enabled"] is False
        assert sds_cache.clear_cache() == 0

    def test_warm(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SDS_CACHE_DIR", str(tmp_path))
        first = sds_cache.warm(2, 2)
        assert first["outcome"] == "built" and first["tops"] == 169
        second = sds_cache.warm(2, 2)
        assert second["outcome"] == "hit" and second["tops"] == 169
        with pytest.raises(ValueError):
            sds_cache.warm(2, 0)

    def test_structure_key_ignores_payloads(self):
        """Two bases differing only in payloads share one cache entry."""
        key_a = sds_cache.structure_key((0, 1, 2), ((0, 1, 2),), 1)
        key_b = sds_cache.structure_key((0, 1, 2), ((0, 1, 2),), 1)
        assert key_a == key_b
        assert key_a != sds_cache.structure_key((0, 1, 2), ((0, 1, 2),), 2)
        assert key_a != sds_cache.structure_key((0, 1, 3), ((0, 1, 2),), 1)


class TestKernelTableInvalidation:
    def test_clear_delta_caches_drops_kernel_tables(self):
        from repro.core.solvability import SearchOptions, solve_task
        from repro.tasks import set_consensus_task

        task = set_consensus_task(3, 2)
        solve_task(task, max_rounds=1, options=SearchOptions(kernel=True))
        assert task._kernel_table_cache  # compile populated it
        task.clear_delta_caches()
        assert not task._kernel_table_cache
        assert not task._candidate_cache

    def test_intern_reset_cascades_to_kernel_tables(self):
        from repro.core.solvability import SearchOptions, solve_task
        from repro.tasks import set_consensus_task

        task = set_consensus_task(3, 2)
        solve_task(task, max_rounds=1, options=SearchOptions(kernel=True))
        assert task._kernel_table_cache
        clear_intern_caches()
        assert not task._kernel_table_cache

"""Unit tests for simplicial complexes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex, vertices_of


def triangle_complex():
    return SimplicialComplex.from_vertices(vertices_of(range(3)))


def hollow_triangle():
    return SimplicialComplex.simplex_boundary(Simplex(vertices_of(range(3))))


class TestConstruction:
    def test_from_vertices(self):
        c = triangle_complex()
        assert c.dimension == 2
        assert len(c.vertices) == 3
        assert len(c.maximal_simplices) == 1

    def test_faces_absorbed(self):
        tri = Simplex(vertices_of(range(3)))
        edge = Simplex(vertices_of(range(2)))
        c = SimplicialComplex([tri, edge])
        assert c.maximal_simplices == frozenset({tri})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SimplicialComplex([])

    def test_non_simplex_rejected(self):
        with pytest.raises(TypeError):
            SimplicialComplex([Vertex(0)])  # type: ignore[list-item]

    def test_boundary_constructor(self):
        c = hollow_triangle()
        assert c.dimension == 1
        assert len(c.maximal_simplices) == 3

    def test_boundary_of_vertex_rejected(self):
        with pytest.raises(ValueError):
            SimplicialComplex.simplex_boundary(Simplex([Vertex(0)]))


class TestQueries:
    def test_contains_vertex_and_simplex(self):
        c = triangle_complex()
        assert Vertex(0) in c
        assert Simplex(vertices_of(range(2))) in c
        assert Vertex(7) not in c
        assert Simplex([Vertex(7)]) not in c

    def test_contains_other_types_false(self):
        assert "nope" not in triangle_complex()

    def test_simplices_enumeration(self):
        assert len(list(triangle_complex().simplices())) == 7

    def test_f_vector(self):
        assert triangle_complex().f_vector() == (3, 3, 1)
        assert hollow_triangle().f_vector() == (3, 3)

    def test_euler_characteristic(self):
        assert triangle_complex().euler_characteristic() == 1  # disk
        assert hollow_triangle().euler_characteristic() == 0  # circle

    def test_face_count_out_of_range(self):
        assert triangle_complex().face_count(5) == 0

    def test_colors(self):
        assert triangle_complex().colors == frozenset({0, 1, 2})

    def test_equality_and_hash(self):
        assert triangle_complex() == triangle_complex()
        assert hash(triangle_complex()) == hash(triangle_complex())
        assert triangle_complex() != hollow_triangle()


class TestPredicates:
    def test_purity(self):
        assert triangle_complex().is_pure()
        tri = Simplex(vertices_of(range(3)))
        lone = Simplex([Vertex(9)])
        assert not SimplicialComplex([tri, lone]).is_pure()

    def test_chromatic(self):
        assert triangle_complex().is_chromatic()
        bad = SimplicialComplex([Simplex([Vertex(0, "a"), Vertex(0, "b")])])
        assert not bad.is_chromatic()

    def test_connectivity(self):
        assert triangle_complex().is_connected()
        two_pieces = SimplicialComplex(
            [Simplex([Vertex(0)]), Simplex([Vertex(1)])]
        )
        assert not two_pieces.is_connected()

    def test_single_vertex_connected(self):
        assert SimplicialComplex([Simplex([Vertex(0)])]).is_connected()

    def test_pseudomanifold(self):
        assert triangle_complex().is_pseudomanifold()
        assert hollow_triangle().is_pseudomanifold()
        # Three triangles sharing one edge: not a pseudomanifold.
        shared = vertices_of(range(2))
        tris = [
            Simplex(shared + [Vertex(3, tag)]) for tag in ("a", "b", "c")
        ]
        assert not SimplicialComplex(tris).is_pseudomanifold()

    def test_boundary_of_disk(self):
        boundary = triangle_complex().boundary()
        assert boundary == hollow_triangle()

    def test_boundary_of_circle_is_none(self):
        assert hollow_triangle().boundary() is None

    def test_boundary_requires_purity(self):
        impure = SimplicialComplex(
            [Simplex(vertices_of(range(3))), Simplex([Vertex(9)])]
        )
        with pytest.raises(ValueError):
            impure.boundary()


class TestStarsLinksSkeletons:
    def test_star_of_vertex(self):
        c = hollow_triangle()
        star = c.star(Simplex([Vertex(0)]))
        assert len(star.maximal_simplices) == 2

    def test_star_of_missing_raises(self):
        with pytest.raises(ValueError):
            triangle_complex().star(Simplex([Vertex(9)]))

    def test_link_of_vertex_in_disk(self):
        link = triangle_complex().link(Simplex([Vertex(0)]))
        assert link == SimplicialComplex([Simplex([Vertex(1), Vertex(2)])])

    def test_link_of_maximal_is_none(self):
        c = triangle_complex()
        assert c.link(Simplex(vertices_of(range(3)))) is None

    def test_skeleton(self):
        skel = triangle_complex().skeleton(1)
        assert skel == hollow_triangle()
        assert triangle_complex().skeleton(2) == triangle_complex()

    def test_skeleton_zero(self):
        skel = triangle_complex().skeleton(0)
        assert skel.dimension == 0
        assert len(skel.maximal_simplices) == 3

    def test_skeleton_negative_raises(self):
        with pytest.raises(ValueError):
            triangle_complex().skeleton(-1)

    def test_induced_on_colors(self):
        sub = triangle_complex().induced_on_colors([0, 1])
        assert sub == SimplicialComplex([Simplex(vertices_of(range(2)))])

    def test_induced_on_missing_colors_none(self):
        assert triangle_complex().induced_on_colors([9]) is None

    def test_filter_maximal(self):
        c = hollow_triangle()
        kept = c.filter_maximal(lambda s: Vertex(0) in s)
        assert len(kept.maximal_simplices) == 2

    def test_filter_rejecting_all_raises(self):
        with pytest.raises(ValueError):
            triangle_complex().filter_maximal(lambda s: False)

    def test_union(self):
        a = SimplicialComplex([Simplex([Vertex(0)])])
        b = SimplicialComplex([Simplex([Vertex(1)])])
        assert len(a.union(b).vertices) == 2


@st.composite
def small_complexes(draw):
    n_vertices = draw(st.integers(min_value=2, max_value=6))
    vertices = vertices_of(range(n_vertices))
    n_simplices = draw(st.integers(min_value=1, max_value=5))
    tops = []
    for _ in range(n_simplices):
        members = draw(
            st.sets(
                st.sampled_from(vertices), min_size=1, max_size=min(4, n_vertices)
            )
        )
        tops.append(Simplex(members))
    return SimplicialComplex(tops)


@settings(max_examples=60)
@given(small_complexes())
def test_maximal_simplices_form_antichain(complex_):
    tops = list(complex_.maximal_simplices)
    for i, a in enumerate(tops):
        for b in tops[i + 1 :]:
            assert not a.is_face_of(b)
            assert not b.is_face_of(a)


@settings(max_examples=60)
@given(small_complexes())
def test_every_enumerated_simplex_is_contained(complex_):
    for s in complex_.simplices():
        assert s in complex_


@settings(max_examples=60)
@given(small_complexes())
def test_euler_characteristic_matches_f_vector(complex_):
    f = complex_.f_vector()
    assert complex_.euler_characteristic() == sum(
        (-1) ** d * c for d, c in enumerate(f)
    )


@settings(max_examples=40)
@given(small_complexes())
def test_star_contains_link_joined_with_simplex(complex_):
    for vertex in complex_.vertices:
        singleton = Simplex([vertex])
        star = complex_.star(singleton)
        link = complex_.link(singleton)
        if link is None:
            continue
        for link_simplex in link.maximal_simplices:
            assert link_simplex.union(singleton) in star

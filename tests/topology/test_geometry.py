"""Geometric layer tests: embeddings, subdivision verification, point location."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.barycentric import barycentric_subdivision
from repro.topology.complex import SimplicialComplex
from repro.topology.geometry import (
    Embedding,
    barycentric_coordinates,
    embed_bsd_level,
    embed_sds_level,
    locate_point,
    mesh,
    point_in_simplex,
    simplex_volume,
    simplices_intersect,
    standard_simplex_embedding,
    verify_geometric_subdivision,
)
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import standard_chromatic_subdivision
from repro.topology.vertex import Vertex, vertices_of


def base(n):
    return SimplicialComplex.from_vertices(vertices_of(range(n + 1)))


class TestEmbedding:
    def test_standard_embedding_positions(self):
        emb = standard_simplex_embedding(base(2))
        for i, v in enumerate(sorted(base(2).vertices, key=Vertex.sort_key)):
            point = emb.position(v)
            assert point[i] == 1.0 and point.sum() == 1.0

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            Embedding({Vertex(0): np.array([1.0]), Vertex(1): np.array([1.0, 2.0])})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Embedding({})

    def test_barycenter(self):
        emb = standard_simplex_embedding(base(2))
        center = emb.barycenter(Simplex(vertices_of(range(3))))
        assert np.allclose(center, [1 / 3] * 3)

    def test_diameter(self):
        emb = standard_simplex_embedding(base(1))
        assert emb.diameter(Simplex(vertices_of(range(2)))) == pytest.approx(np.sqrt(2))
        assert emb.diameter(Simplex([Vertex(0)])) == 0.0

    def test_extended_and_restricted(self):
        emb = standard_simplex_embedding(base(1))
        extra = Vertex(9, "extra")
        bigger = emb.extended({extra: np.array([0.5, 0.5])})
        assert extra in bigger
        smaller = bigger.restricted_to([extra])
        assert extra in smaller
        assert Vertex(0) not in smaller


class TestVolumesAndCoordinates:
    def test_unit_triangle_volume(self):
        points = np.array([[0, 0], [1, 0], [0, 1]], dtype=float)
        assert simplex_volume(points) == pytest.approx(0.5)

    def test_degenerate_volume_zero(self):
        points = np.array([[0, 0], [1, 1], [2, 2]], dtype=float)
        assert simplex_volume(points) == pytest.approx(0.0)

    def test_point_volume_zero(self):
        assert simplex_volume(np.array([[1.0, 2.0]])) == 0.0

    def test_barycentric_roundtrip(self):
        points = np.array([[0, 0], [1, 0], [0, 1]], dtype=float)
        target = np.array([0.25, 0.5])
        coords = barycentric_coordinates(target, points)
        assert coords is not None
        assert np.allclose(coords @ points, target)
        assert coords.sum() == pytest.approx(1.0)

    def test_point_off_affine_hull_returns_none(self):
        segment = np.array([[0, 0, 0], [1, 0, 0]], dtype=float)
        assert barycentric_coordinates(np.array([0.5, 1.0, 0.0]), segment) is None

    def test_zero_dimensional(self):
        point = np.array([[1.0, 1.0]])
        assert barycentric_coordinates(np.array([1.0, 1.0]), point) is not None
        assert barycentric_coordinates(np.array([2.0, 1.0]), point) is None

    def test_point_in_simplex(self):
        points = np.array([[0, 0], [1, 0], [0, 1]], dtype=float)
        assert point_in_simplex(np.array([0.2, 0.2]), points)
        assert point_in_simplex(np.array([0.0, 0.0]), points)  # corner
        assert not point_in_simplex(np.array([0.8, 0.8]), points)


class TestIntersection:
    def test_overlapping(self):
        a = np.array([[0, 0], [2, 0], [0, 2]], dtype=float)
        b = np.array([[1, 1], [3, 1], [1, 3]], dtype=float)
        assert simplices_intersect(a, b)

    def test_touching_at_point(self):
        a = np.array([[0, 0], [1, 0]], dtype=float)
        b = np.array([[1, 0], [2, 0]], dtype=float)
        assert simplices_intersect(a, b)

    def test_disjoint(self):
        a = np.array([[0, 0], [1, 0]], dtype=float)
        b = np.array([[0, 1], [1, 1]], dtype=float)
        assert not simplices_intersect(a, b)


class TestSubdivisionEmbeddings:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_sds_embedding_is_geometric_subdivision(self, n):
        b = base(n)
        sds = standard_chromatic_subdivision(b)
        emb0 = standard_simplex_embedding(b)
        emb1 = embed_sds_level(sds, emb0)
        verify_geometric_subdivision(sds, emb0, emb1)

    @pytest.mark.parametrize("n", [1, 2])
    def test_bsd_embedding_is_geometric_subdivision(self, n):
        b = base(n)
        bsd = barycentric_subdivision(b)
        emb0 = standard_simplex_embedding(b)
        emb1 = embed_bsd_level(bsd, emb0)
        verify_geometric_subdivision(bsd, emb0, emb1)

    def test_iterated_sds_embedding(self):
        b = base(2)
        emb = standard_simplex_embedding(b)
        from repro.topology.subdivision import trivial_subdivision

        sub = trivial_subdivision(b)
        for _ in range(2):
            level = standard_chromatic_subdivision(sub.complex)
            emb_next = embed_sds_level(level, emb)
            verify_geometric_subdivision(level, emb, emb_next)
            sub, emb = sub.then(level), emb_next

    def test_mesh_shrinks(self):
        b = base(2)
        emb0 = standard_simplex_embedding(b)
        sds = standard_chromatic_subdivision(b)
        emb1 = embed_sds_level(sds, emb0)
        assert mesh(sds.complex, emb1) < mesh(b, emb0)
        level2 = standard_chromatic_subdivision(sds.complex)
        emb2 = embed_sds_level(level2, emb1)
        assert mesh(level2.complex, emb2) < mesh(sds.complex, emb1)

    def test_sds_central_vertices_match_paper_construction(self):
        # Section 3.6: m_i is the midpoint of (a, b_i) where a is the
        # barycenter and b_i the barycenter of the face opposite color i.
        b = base(2)
        emb0 = standard_simplex_embedding(b)
        sds = standard_chromatic_subdivision(b)
        emb1 = embed_sds_level(sds, emb0)
        all_vertices = frozenset(b.vertices)
        a = np.array([1 / 3] * 3)
        for color in range(3):
            m = emb1.position(Vertex(color, all_vertices))
            opposite = [v for v in b.vertices if v.color != color]
            b_i = np.mean([emb0.position(v) for v in opposite], axis=0)
            assert np.allclose(m, (a + b_i) / 2)


class TestLocation:
    def test_locate_interior_point(self):
        b = base(2)
        sds = standard_chromatic_subdivision(b)
        emb0 = standard_simplex_embedding(b)
        emb1 = embed_sds_level(sds, emb0)
        hits = locate_point(sds.complex, emb1, np.array([1 / 3] * 3))
        assert hits  # the barycenter lies in at least one simplex

    def test_locate_corner(self):
        b = base(2)
        sds = standard_chromatic_subdivision(b)
        emb0 = standard_simplex_embedding(b)
        emb1 = embed_sds_level(sds, emb0)
        hits = locate_point(sds.complex, emb1, np.array([1.0, 0.0, 0.0]))
        assert len(hits) >= 1

    def test_locate_outside(self):
        b = base(2)
        emb0 = standard_simplex_embedding(b)
        hits = locate_point(b, emb0, np.array([2.0, 2.0, 2.0]))
        assert hits == []


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 1), st.floats(0, 1)), min_size=3, max_size=3
    ).filter(
        lambda pts: abs(
            (pts[1][0] - pts[0][0]) * (pts[2][1] - pts[0][1])
            - (pts[2][0] - pts[0][0]) * (pts[1][1] - pts[0][1])
        )
        > 1e-3
    ),
    st.floats(0.01, 0.97),
    st.floats(0.01, 0.97),
)
def test_convex_combination_always_inside(points, u, v):
    """Any proper convex combination of triangle vertices lies inside it."""
    array = np.array(points, dtype=float)
    weights = np.array([u, v * (1 - u), (1 - u) * (1 - v)])
    weights /= weights.sum()
    inside = weights @ array
    assert point_in_simplex(inside, array, tol=1e-7)

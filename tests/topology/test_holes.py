"""Mod-2 homology tests: spheres have holes, subdivided simplices do not."""

import pytest

from repro.topology.barycentric import barycentric_subdivision
from repro.topology.complex import SimplicialComplex
from repro.topology.holes import (
    betti_numbers_mod2,
    boundary_matrix,
    has_no_holes_up_to,
    link_hole_report,
    verify_subdivided_simplex_has_no_holes,
)
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
    standard_chromatic_subdivision,
)
from repro.topology.vertex import Vertex, vertices_of


def full(n):
    return SimplicialComplex.from_vertices(vertices_of(range(n + 1)))


def sphere(n):
    return SimplicialComplex.simplex_boundary(Simplex(vertices_of(range(n + 2))))


class TestBetti:
    def test_point(self):
        c = SimplicialComplex([Simplex([Vertex(0)])])
        assert betti_numbers_mod2(c) == (0,)

    def test_two_points(self):
        c = SimplicialComplex([Simplex([Vertex(0)]), Simplex([Vertex(1)])])
        assert betti_numbers_mod2(c) == (1,)  # reduced: components - 1

    def test_disk(self):
        assert betti_numbers_mod2(full(2)) == (0, 0, 0)

    def test_circle(self):
        assert betti_numbers_mod2(sphere(1)) == (0, 1)

    def test_two_sphere(self):
        assert betti_numbers_mod2(sphere(2)) == (0, 0, 1)

    def test_wedge_of_two_circles(self):
        # Two triangles boundaries sharing exactly one vertex.
        a = [Vertex(0), Vertex(1), Vertex(2)]
        b = [Vertex(0), Vertex(3, "b"), Vertex(4, "b")]
        edges = []
        for tri in (a, b):
            edges.extend(
                Simplex(pair) for pair in [tri[:2], tri[1:], [tri[0], tri[2]]]
            )
        c = SimplicialComplex(edges)
        assert betti_numbers_mod2(c) == (0, 2)

    def test_boundary_matrix_shape(self):
        matrix, rows, cols = boundary_matrix(full(2), 2)
        assert matrix.shape == (3, 1)
        assert len(rows) == 3 and len(cols) == 1
        assert matrix.sum() == 3  # the triangle has three edges

    def test_boundary_matrix_dimension_zero_rejected(self):
        with pytest.raises(ValueError):
            boundary_matrix(full(1), 0)

    def test_boundary_squared_is_zero(self):
        c = full(3)
        d2, _r2, _c2 = boundary_matrix(c, 2)
        d3, _r3, _c3 = boundary_matrix(c, 3)
        assert ((d2 @ d3) % 2 == 0).all()


class TestNoHoles:
    def test_has_no_holes_up_to(self):
        assert has_no_holes_up_to(full(2), 2)
        assert not has_no_holes_up_to(sphere(1), 1)
        assert has_no_holes_up_to(sphere(1), 0)

    def test_verify_subdivided_simplex(self):
        sds = standard_chromatic_subdivision(full(2))
        verify_subdivided_simplex_has_no_holes(sds.complex, 2)

    def test_verify_rejects_sphere(self):
        with pytest.raises(ValueError):
            verify_subdivided_simplex_has_no_holes(sphere(1), 1)

    def test_verify_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            verify_subdivided_simplex_has_no_holes(full(2), 3)


class TestLemma22Links:
    """Lemma 2.2: links inside a subdivided simplex have no low holes."""

    def test_links_in_sds_s2(self):
        sds = standard_chromatic_subdivision(full(2))
        report = link_hole_report(sds.complex)
        for singleton, betti in report.items():
            vertex = next(iter(singleton))
            # For an interior vertex the link is a circle (hole in dim 1 is
            # allowed: n - (q+1) = 2 - 1 = 1 is the first *excluded* hole
            # dimension, so only dimension 0 must vanish).
            if betti:
                assert betti[0] == 0, f"link of {vertex!r} disconnected"

    def test_links_in_bsd_s2(self):
        bsd = barycentric_subdivision(full(2))
        for singleton, betti in link_hole_report(bsd.complex).items():
            if betti:
                assert betti[0] == 0

    def test_links_in_sds2_s1(self):
        sds = iterated_standard_chromatic_subdivision(full(1), 2)
        for singleton, betti in link_hole_report(sds.complex).items():
            # 1-dimensional complex: links are points or pairs of points;
            # interior vertices have 2-point links (betti0 = 1 allowed since
            # n - (q+1) = 0 means no hole of dimension <= 0 required only
            # for interior... boundary corners have 1-point links).
            assert len(betti) <= 1

"""Color-preserving isomorphism tests."""

from hypothesis import given, settings, strategies as st

from repro.topology.complex import SimplicialComplex
from repro.topology.isomorphism import are_isomorphic, find_isomorphism
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import standard_chromatic_subdivision
from repro.topology.vertex import Vertex, vertices_of


def base(n, payload=None):
    return SimplicialComplex.from_vertices(
        [Vertex(i, payload) for i in range(n + 1)]
    )


class TestPositive:
    def test_identity(self):
        sds = standard_chromatic_subdivision(base(2)).complex
        mapping = find_isomorphism(sds, sds)
        assert mapping is not None

    def test_different_payload_encodings(self):
        """The same structure over different input payloads is isomorphic
        though not equal."""
        a = standard_chromatic_subdivision(base(2, "x")).complex
        b = standard_chromatic_subdivision(base(2, "y")).complex
        assert a != b
        assert are_isomorphic(a, b)

    def test_mapping_is_simplicial_bijection(self):
        a = standard_chromatic_subdivision(base(1, "x")).complex
        b = standard_chromatic_subdivision(base(1, "y")).complex
        mapping = find_isomorphism(a, b)
        assert mapping is not None
        assert len(set(mapping.values())) == len(a.vertices)
        for top in a.maximal_simplices:
            assert Simplex(mapping[v] for v in top) in b
        for v, w in mapping.items():
            assert v.color == w.color


class TestNegative:
    def test_different_sizes(self):
        assert not are_isomorphic(base(1), base(2))

    def test_different_f_vectors(self):
        sds = standard_chromatic_subdivision(base(1)).complex
        assert not are_isomorphic(base(1), sds)

    def test_same_f_vector_different_structure(self):
        # A 3-path and a triangle-with-pendant... simplest: path of 3 edges
        # vs star of 3 edges: same f-vector (4, 3), different degrees.
        path = SimplicialComplex(
            [
                Simplex([Vertex(0, i), Vertex(0, i + 1)])
                for i in range(3)
            ]
        )
        star = SimplicialComplex(
            [
                Simplex([Vertex(0, "hub"), Vertex(0, f"leaf{i}")])
                for i in range(3)
            ]
        )
        assert path.f_vector() == star.f_vector()
        assert not are_isomorphic(path, star)

    def test_color_mismatch(self):
        a = SimplicialComplex([Simplex([Vertex(0, "x"), Vertex(1, "x")])])
        b = SimplicialComplex([Simplex([Vertex(0, "x"), Vertex(2, "x")])])
        assert not are_isomorphic(a, b)


@settings(max_examples=20, deadline=None)
@given(st.permutations([0, 1, 2]))
def test_relabeled_sds_isomorphic_iff_relabeling_is_identity_on_structure(perm):
    """Relabeled SDS is isomorphic to the original exactly when colors are
    matched — and never color-preserving-isomorphic under a nontrivial
    permutation with distinct per-color payloads."""
    from repro.topology.chromatic import relabel_colors

    inputs = SimplicialComplex(
        [Simplex([Vertex(0, "a"), Vertex(1, "b"), Vertex(2, "c")])]
    )
    sds = standard_chromatic_subdivision(inputs).complex
    permutation = {i: perm[i] for i in range(3)}
    relabeled = relabel_colors(sds, permutation)
    # Color-preserving isomorphism exists iff each color class has the same
    # structure — here always true by symmetry of SDS: the relabeled complex
    # is isomorphic (payloads differ, structure is symmetric).
    assert are_isomorphic(sds, relabeled)

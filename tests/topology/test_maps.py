"""Simplicial map tests."""

import pytest

from repro.topology.complex import SimplicialComplex
from repro.topology.maps import (
    SimplicialMap,
    check_map_on_simplices,
    constant_color_sections,
    identity_map,
)
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    standard_chromatic_subdivision,
    view_of,
)
from repro.topology.vertex import Vertex, vertices_of


def path_complex(values):
    """A path 0-1-2-...; vertices alternate colors 0/1, payloads = values."""
    verts = [Vertex(i % 2, value) for i, value in enumerate(values)]
    return SimplicialComplex(
        [Simplex([a, b]) for a, b in zip(verts, verts[1:])]
    ), verts


class TestConstruction:
    def test_identity(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(3)))
        m = identity_map(c)
        assert m.is_simplicial()
        assert m.is_color_preserving()
        assert m.is_dimension_preserving()

    def test_partial_mapping_rejected(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(2)))
        with pytest.raises(ValueError):
            SimplicialMap(c, c, {Vertex(0): Vertex(0)})

    def test_image_outside_target_rejected(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(2)))
        with pytest.raises(ValueError):
            SimplicialMap(c, c, {Vertex(0): Vertex(9), Vertex(1): Vertex(1)})


class TestPredicates:
    def test_non_simplicial_detected(self):
        source, sv = path_complex("abc")
        # Map endpoints of the path onto the two ends of a 2-edge path's
        # extremes — adjacent source vertices land on non-adjacent targets.
        target, tv = path_complex("xyz")
        mapping = {sv[0]: tv[0], sv[1]: tv[1], sv[2]: tv[1]}
        m = SimplicialMap(source, target, mapping)
        assert m.is_simplicial()
        bad = SimplicialMap(source, target, {sv[0]: tv[0], sv[1]: tv[2], sv[2]: tv[0]})
        assert not bad.is_simplicial()

    def test_collapse_is_simplicial_but_not_dimension_preserving(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(2)))
        target = SimplicialComplex([Simplex([Vertex(0)])])
        m = SimplicialMap(c, target, {Vertex(0): Vertex(0), Vertex(1): Vertex(0)})
        assert m.is_simplicial()
        assert not m.is_dimension_preserving()
        assert not m.is_color_preserving()

    def test_validate_reports_first_violation(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(2)))
        target = SimplicialComplex([Simplex([Vertex(0)]), Simplex([Vertex(1)])])
        m = SimplicialMap(c, target, {Vertex(0): Vertex(0), Vertex(1): Vertex(1)})
        with pytest.raises(ValueError, match="not simplicial"):
            m.validate()

    def test_validate_color(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(2)))
        swap = SimplicialMap(c, c, {Vertex(0): Vertex(1), Vertex(1): Vertex(0)})
        assert swap.is_simplicial()
        with pytest.raises(ValueError, match="color"):
            swap.validate()

    def test_carrier_preserving_default_containment(self):
        base = SimplicialComplex.from_vertices(vertices_of(range(2)))
        sds = standard_chromatic_subdivision(base)
        # Collapse every SDS vertex to the corner of its own color: carrier
        # of image (a corner) is contained in the vertex's carrier.
        corners = {v.color: v for v in base.vertices}
        mapping = {v: corners[v.color] for v in sds.complex.vertices}
        m = SimplicialMap(sds.complex, base, mapping)
        trivial_carrier = lambda v: Simplex([v])
        assert m.is_carrier_preserving(sds.carrier, trivial_carrier)
        # Strict equality fails: interior vertices have a bigger carrier.
        assert not m.is_carrier_preserving(sds.carrier, trivial_carrier, strict=True)


class TestComposition:
    def test_compose_applies_in_order(self):
        c = SimplicialComplex.from_vertices(vertices_of(range(2)))
        swap = SimplicialMap(c, c, {Vertex(0): Vertex(1), Vertex(1): Vertex(0)})
        composed = swap.compose(swap)
        assert composed(Vertex(0)) == Vertex(0)

    def test_compose_mismatch_rejected(self):
        a = SimplicialComplex.from_vertices(vertices_of(range(2)))
        b = SimplicialComplex.from_vertices(vertices_of(range(3)))
        with pytest.raises(ValueError):
            identity_map(a).compose(identity_map(b))


class TestHelpers:
    def test_constant_color_sections(self):
        base = SimplicialComplex.from_vertices(vertices_of(range(2)))
        sds = standard_chromatic_subdivision(base)
        sections = constant_color_sections(base, sds.complex)
        assert set(sections) == {0, 1}
        for color, candidates in sections.items():
            assert all(v.color == color for v in candidates)

    def test_check_map_on_simplices_partial(self):
        target, tv = path_complex("xy")
        source, sv = path_complex("ab")
        partial = {sv[0]: tv[0]}
        assert check_map_on_simplices(partial, source.maximal_simplices, target)
        partial_bad = {sv[0]: tv[0], sv[1]: tv[0]}
        # Image {x, x} collapses to a vertex — still a simplex: allowed.
        assert check_map_on_simplices(partial_bad, source.maximal_simplices, target)


class TestSDSMaps:
    def test_carrier_collapse_map_from_sds(self):
        """The 'decide the maximum color you saw' map is simplicial."""
        base = SimplicialComplex.from_vertices(vertices_of(range(3)))
        sds = standard_chromatic_subdivision(base)
        # Target: output complex where each process names a color it saw.
        target_tops = []
        for top in sds.complex.maximal_simplices:
            target_tops.append(
                Simplex(
                    Vertex(v.color, max(u.color for u in view_of(v))) for v in top
                )
            )
        target = SimplicialComplex(target_tops)
        mapping = {
            v: Vertex(v.color, max(u.color for u in view_of(v)))
            for v in sds.complex.vertices
        }
        m = SimplicialMap(sds.complex, target, mapping)
        assert m.is_simplicial()
        assert m.is_color_preserving()

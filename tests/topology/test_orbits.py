"""The orbit-reduced ordered-partition enumeration (symmetry layer).

Pins the combinatorics the packed ``SDS`` builder rides on: compositions
index the ``S_k`` orbits (2^(k-1) of them), the Young-subgroup transversal
enumerates exactly the multinomial members per orbit, the per-orbit template
derivation reproduces the full ordered-partition template set, and the packed
tables have the sizes the theory predicts (``n_pairs = f_0(SDS(s^{k-1}))``,
``n_templates = Fubini(k)``).
"""

import pytest

from repro.topology.orbits import (
    compositions,
    orbit_count,
    orbit_members,
    orbit_partition_templates,
    orbit_representative,
    orbit_size,
    packed_tables,
    prime_packed_tables,
)
from repro.topology.standard_chromatic import fubini, sds_partition_templates

SIZES = [1, 2, 3, 4, 5]


class TestCompositions:
    @pytest.mark.parametrize("size", SIZES)
    def test_count_is_two_to_k_minus_one(self, size):
        assert len(list(compositions(size))) == orbit_count(size) == 2 ** (size - 1)

    @pytest.mark.parametrize("size", SIZES)
    def test_each_sums_to_size_with_positive_blocks(self, size):
        for composition in compositions(size):
            assert sum(composition) == size
            assert all(block > 0 for block in composition)

    def test_empty_composition(self):
        assert list(compositions(0)) == [()]
        assert orbit_count(0) == 1

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            list(compositions(-1))


class TestOrbits:
    @pytest.mark.parametrize("size", SIZES)
    def test_orbit_sizes_sum_to_fubini(self, size):
        assert sum(orbit_size(c) for c in compositions(size)) == fubini(size)

    @pytest.mark.parametrize("size", SIZES[:4])
    def test_member_counts_match_multinomials(self, size):
        for composition in compositions(size):
            members = list(orbit_members(composition))
            assert len(members) == orbit_size(composition)
            assert len(set(members)) == len(members)  # transversal: no repeats

    @pytest.mark.parametrize("size", SIZES[:4])
    def test_members_are_ordered_partitions(self, size):
        for composition in compositions(size):
            for member in orbit_members(composition):
                flattened = [i for block in member for i in block]
                assert sorted(flattened) == list(range(size))
                assert tuple(len(block) for block in member) == tuple(composition)

    def test_representative_is_a_member(self, size=4):
        for composition in compositions(size):
            assert orbit_representative(composition) in set(
                orbit_members(composition)
            )


class TestTemplates:
    @pytest.mark.parametrize("size", SIZES[:4])
    def test_orbit_templates_equal_partition_templates(self, size):
        """Per-orbit derivation == full enumeration, up to prefix sort order.

        ``sds_partition_templates`` stores prefixes in block-insertion order;
        the orbit templates canonicalize them to sorted tuples (the snapshot
        is a set).  After normalizing, the template *sets* must coincide —
        each template being one ordered partition with its per-block views.
        """
        canonical_naive = {
            tuple((block, tuple(sorted(prefix))) for block, prefix in template)
            for template in sds_partition_templates(size)
        }
        canonical_orbit = set(orbit_partition_templates(size))
        assert canonical_orbit == canonical_naive
        assert len(orbit_partition_templates(size)) == fubini(size)


class TestPackedTables:
    # f_0(SDS(s^{k-1})): distinct (member, prefix) pairs per top of size k.
    F0 = {1: 1, 2: 4, 3: 12, 4: 32, 5: 80}

    @pytest.mark.parametrize("size", SIZES)
    def test_table_sizes(self, size):
        tables = packed_tables(size)
        assert tables.orbits == orbit_count(size)
        assert tables.n_templates == fubini(size)
        assert tables.n_pairs == self.F0[size]
        assert len(tables.pair_info) == tables.n_pairs

    @pytest.mark.parametrize("size", SIZES[:4])
    def test_getters_reconstruct_singleton_base(self, size):
        """Instantiating the tables on the identity top reproduces the naive
        per-simplex vertex set: every (member, prefix-id) pair appears in at
        least one template, and template members index valid local ids."""
        tables = packed_tables(size)
        top = tuple(range(size))
        prefixes = [getter(top) for getter in tables.prefix_getters]
        assert all(tuple(sorted(p)) == p for p in prefixes)
        used = set()
        local = list(range(tables.n_pairs))
        for getter in tables.template_getters:
            members = getter(local)
            assert len(members) == size
            used.update(members)
        assert used == set(range(tables.n_pairs))

    def test_prime_is_idempotent(self):
        prime_packed_tables(4)
        before = packed_tables.cache_info().currsize
        prime_packed_tables(4)
        assert packed_tables.cache_info().currsize == before

"""Equivalence suite for the hot-path performance layer.

The optimizations (vertex/simplex interning, ordered-partition templates,
membership indexes, memoized SDS results, process-pool fan-out) must be
*invisible*: every optimized path has to produce exactly the objects the
naive path produces.  This module pins that down — complex equality,
f-vectors, per-vertex carriers — for all ``(n <= 3, b <= 2)``, and checks
that interned objects round-trip unchanged through the JSON serializer.
"""

import pytest

from repro.analysis.export import subdivision_from_json, subdivision_to_json
from repro.topology.complex import SimplicialComplex
from repro.topology.interning import clear_intern_caches, intern_table_sizes
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    fubini,
    iterated_standard_chromatic_subdivision,
    sds_partition_templates,
    sds_simplices_of,
    sds_simplices_of_naive,
    standard_chromatic_subdivision,
    view_of,
)
from repro.topology.subdivision import Subdivision, trivial_subdivision
from repro.topology.vertex import Vertex


def input_complex(n):
    return SimplicialComplex(
        [Simplex(Vertex(pid, f"v{pid}") for pid in range(n + 1))]
    )


def naive_standard_chromatic_subdivision(base):
    """``SDS(K)`` built through the pre-template reference path."""
    tops = []
    for maximal in base.maximal_simplices:
        tops.extend(sds_simplices_of_naive(maximal))
    subdivided = SimplicialComplex(tops)
    carriers = {v: Simplex(view_of(v)) for v in subdivided.vertices}
    return Subdivision(base, subdivided, carriers)


def naive_iterated(base, rounds):
    result = trivial_subdivision(base)
    for _ in range(rounds):
        result = result.then(naive_standard_chromatic_subdivision(result.complex))
    return result


GRID = [(n, b) for n in (1, 2, 3) for b in (1, 2)]


class TestOptimizedEqualsNaive:
    @pytest.mark.parametrize("n,b", GRID, ids=[f"n{n}_b{b}" for n, b in GRID])
    def test_complex_f_vector_and_carriers(self, n, b):
        base = input_complex(n)
        optimized = iterated_standard_chromatic_subdivision(base, b)
        naive = naive_iterated(base, b)
        assert optimized.complex == naive.complex
        assert optimized.complex.f_vector() == naive.complex.f_vector()
        assert optimized.carriers() == naive.carriers()

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_per_simplex_tops_match(self, n):
        top = Simplex(Vertex(pid, f"v{pid}") for pid in range(n + 1))
        assert set(sds_simplices_of(top)) == set(sds_simplices_of_naive(top))
        assert len(list(sds_simplices_of(top))) == fubini(n + 1)

    def test_templates_count_is_fubini(self):
        for size in range(1, 5):
            assert len(sds_partition_templates(size)) == fubini(size)

    def test_template_prefixes_are_cumulative_unions(self):
        for template in sds_partition_templates(3):
            seen = set()
            for block, prefix in template:
                seen.update(block)
                assert set(prefix) == seen

    def test_fubini_values_pinned(self):
        # Fubini(1..5): the maximal-simplex counts of SDS(s^0..s^4).
        assert [fubini(n) for n in range(1, 6)] == [1, 3, 13, 75, 541]


class TestParallelFanOut:
    def test_parallel_sds_equals_serial(self):
        base = standard_chromatic_subdivision(input_complex(2)).complex
        serial = standard_chromatic_subdivision(base)
        parallel = standard_chromatic_subdivision(base, max_workers=2)
        assert serial.complex == parallel.complex
        assert serial.carriers() == parallel.carriers()

    def test_parallel_iterated_equals_serial(self):
        serial = iterated_standard_chromatic_subdivision(input_complex(2), 2)
        parallel = iterated_standard_chromatic_subdivision(
            input_complex(2), 2, max_workers=2
        )
        assert serial.complex == parallel.complex
        assert serial.carriers() == parallel.carriers()


class TestInterning:
    def test_vertices_are_hash_consed(self):
        assert Vertex(3, "payload") is Vertex(3, "payload")

    def test_simplices_are_hash_consed(self):
        u, w = Vertex(0, "a"), Vertex(1, "b")
        assert Simplex([u, w]) is Simplex([w, u])

    def test_nested_views_are_shared(self):
        sds = iterated_standard_chromatic_subdivision(input_complex(2), 2)
        rebuilt = iterated_standard_chromatic_subdivision(input_complex(2), 2)
        for vertex in sds.complex.vertices:
            assert vertex is Vertex(vertex.color, vertex.payload)
        assert sds.complex.maximal_simplices == rebuilt.complex.maximal_simplices

    def test_sort_key_cached_and_stable(self):
        vertex = Vertex(2, frozenset({Vertex(0, "x")}))
        assert vertex.sort_key() == vertex.sort_key()
        assert vertex.sort_key()[0] == 2

    def test_vertices_immutable(self):
        vertex = Vertex(0, "a")
        with pytest.raises(AttributeError):
            vertex.color = 1

    def test_clear_intern_caches_resets_tables(self):
        Vertex(0, "ephemeral-intern-test")
        before = intern_table_sizes()
        assert before["vertices"] > 0
        dropped = clear_intern_caches()
        assert dropped == before
        assert intern_table_sizes() == {"vertices": 0, "simplices": 0}
        # Post-reset construction still works and value-equality still holds.
        assert Vertex(0, "ephemeral-intern-test") == Vertex(0, "ephemeral-intern-test")

    def test_interned_objects_roundtrip_through_export(self):
        subdivision = iterated_standard_chromatic_subdivision(input_complex(2), 2)
        document = subdivision_to_json(subdivision)
        restored = subdivision_from_json(document)
        assert restored.complex == subdivision.complex
        assert restored.base == subdivision.base
        assert restored.carriers() == subdivision.carriers()
        # Interning makes the round-trip reproduce the *same* objects.
        for vertex in subdivision.complex.vertices:
            assert vertex in restored.complex.vertices
        for simplex in subdivision.complex.maximal_simplices:
            assert simplex in restored.complex.maximal_simplices
        restored_vertices = {v: v for v in restored.complex.vertices}
        for vertex in subdivision.complex.vertices:
            assert restored_vertices[vertex] is vertex


class TestMembershipIndex:
    def test_matches_linear_scan(self):
        complex_ = iterated_standard_chromatic_subdivision(input_complex(2), 2).complex
        probes = list(complex_.simplices(0)) + list(complex_.simplices(1))
        probes += list(complex_.maximal_simplices)
        outsider = Simplex([Vertex(7, "not-here")])
        probes.append(outsider)
        mixed = Simplex(list(next(iter(complex_.maximal_simplices)).vertices)[:1] + [Vertex(7, "not-here")])
        probes.append(mixed)
        for probe in probes:
            naive = any(probe.is_face_of(m) for m in complex_.maximal_simplices)
            assert (probe in complex_) == naive

    def test_star_and_link_match_index(self):
        complex_ = standard_chromatic_subdivision(input_complex(2)).complex
        for vertex in complex_.vertices:
            star = complex_.star(Simplex([vertex]))
            expected = [m for m in complex_.maximal_simplices if vertex in m]
            assert star.maximal_simplices == frozenset(expected)

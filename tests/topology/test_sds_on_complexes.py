"""SDS over *complexes* (not just simplices): gluing, property-based.

Lemma 3.3's step from a simplex to a general input complex hinges on
face-local gluing: shared faces subdivide identically from both sides.
These tests exercise that on randomly glued chromatic 2-complexes.
"""

from hypothesis import given, settings, strategies as st

from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    fubini,
    standard_chromatic_subdivision,
)
from repro.topology.vertex import Vertex


@st.composite
def glued_chromatic_complexes(draw):
    """A random pure chromatic 2-complex built from properly colored
    triangles over small payload pools (sharing arises naturally)."""
    n_triangles = draw(st.integers(min_value=1, max_value=4))
    pool_size = draw(st.integers(min_value=1, max_value=2))
    triangles = []
    for _ in range(n_triangles):
        members = [
            Vertex(color, draw(st.integers(0, pool_size - 1)))
            for color in range(3)
        ]
        triangles.append(Simplex(members))
    return SimplicialComplex(triangles)


@settings(max_examples=40, deadline=None)
@given(glued_chromatic_complexes())
def test_sds_validates_on_glued_complexes(complex_):
    sds = standard_chromatic_subdivision(complex_)
    sds.validate(chromatic=True)


@settings(max_examples=40, deadline=None)
@given(glued_chromatic_complexes())
def test_top_counts_multiply(complex_):
    sds = standard_chromatic_subdivision(complex_)
    expected = fubini(3) * len(
        [m for m in complex_.maximal_simplices if m.dimension == 2]
    )
    assert len(sds.complex.maximal_simplices) == expected


@settings(max_examples=40, deadline=None)
@given(glued_chromatic_complexes())
def test_shared_faces_subdivide_once(complex_):
    """A face shared by several triangles contributes its subdivision
    vertices exactly once (vertex identity is by value)."""
    sds = standard_chromatic_subdivision(complex_)
    # Vertex count = sum over faces of (face size), faces counted once.
    expected = sum(
        complex_.face_count(d) * (d + 1) for d in range(complex_.dimension + 1)
    )
    assert len(sds.complex.vertices) == expected


@settings(max_examples=30, deadline=None)
@given(glued_chromatic_complexes())
def test_connectivity_preserved(complex_):
    """Subdivision does not change the realization: components match."""
    sds = standard_chromatic_subdivision(complex_)
    assert sds.complex.is_connected() == complex_.is_connected()


@settings(max_examples=30, deadline=None)
@given(glued_chromatic_complexes())
def test_euler_characteristic_preserved(complex_):
    sds = standard_chromatic_subdivision(complex_)
    assert sds.complex.euler_characteristic() == complex_.euler_characteristic()


@settings(max_examples=25, deadline=None)
@given(glued_chromatic_complexes())
def test_carriers_land_in_base(complex_):
    sds = standard_chromatic_subdivision(complex_)
    for vertex in sds.complex.vertices:
        assert sds.carrier(vertex) in complex_

"""Property suite: SDS invariants over *randomized* chromatic complexes.

The example-based tests in ``test_standard_chromatic.py`` pin the paper's
small instances; this suite quantifies the same invariants over the
:mod:`tests.strategies` generators — any chromatic complex, glued along
arbitrary shared faces — so a regression that only bites an odd gluing
pattern still falls out of CI.
"""

from hypothesis import given, strategies as st

from repro.topology.standard_chromatic import (
    fubini,
    iterated_standard_chromatic_subdivision,
    standard_chromatic_subdivision,
    view_of,
)
from tests.strategies import chromatic_complexes


class TestOneRoundProperties:
    @given(chromatic_complexes())
    def test_color_and_carrier_preserving(self, base):
        subdivision = standard_chromatic_subdivision(base)
        # validate(chromatic=True) checks properness, carrier containment of
        # each vertex's color, purity of per-top restrictions, and onto-ness.
        subdivision.validate(chromatic=True)
        assert subdivision.complex.colors == base.colors

    @given(chromatic_complexes())
    def test_top_count_is_fubini_sum(self, base):
        subdivision = standard_chromatic_subdivision(base)
        expected = sum(
            fubini(top.dimension + 1) for top in base.maximal_simplices
        )
        assert len(subdivision.complex.maximal_simplices) == expected

    @given(chromatic_complexes())
    def test_views_are_carrier_vertex_sets(self, base):
        subdivision = standard_chromatic_subdivision(base)
        for vertex in subdivision.complex.vertices:
            view = view_of(vertex)
            carrier = subdivision.carrier(vertex)
            assert view == frozenset(carrier)


class TestIteratedProperties:
    @given(chromatic_complexes(max_tops=2), st.integers(min_value=1, max_value=2))
    def test_iterated_carriers_compose_to_base(self, base, rounds):
        subdivision = iterated_standard_chromatic_subdivision(base, rounds)
        subdivision.validate(chromatic=True)
        assert subdivision.base == base
        assert subdivision.complex.colors == base.colors

    @given(chromatic_complexes(max_tops=2), st.integers(min_value=1, max_value=2))
    def test_iterated_top_count_composes(self, base, rounds):
        """tops(SDS^b) equals b-fold iteration of the Fubini-sum recurrence."""
        subdivision = iterated_standard_chromatic_subdivision(base, rounds)
        current = base
        for _ in range(rounds):
            current = standard_chromatic_subdivision(current).complex
        assert len(subdivision.complex.maximal_simplices) == len(
            current.maximal_simplices
        )

"""The out-of-core shard builder against the in-RAM packed builder.

The sharded writer must be *payload-identical* to ``build_sds_packed`` at
every shard size: same colors, same views, same tops in the same order, same
carrier masks, same star index — shard boundaries are storage, not
semantics.  On top of that sit the persistence contracts (manifest + shard
files round-trip through ``open_sharded``, wrong split parameters miss) and
the cache-budget satellite (LRU ``prune`` with mtime recency).
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import sds_cache
from repro.topology.compact import CompactComplex, build_sds_packed
from repro.topology.shards import (
    DEFAULT_SHARD_SIZE,
    ShardedSubdivision,
    build_sds_sharded,
    ensure_sharded,
    open_sharded,
)

SIMPLEX = lambda n: (tuple(range(n + 1)), (tuple(range(n + 1)),))  # noqa: E731

# A multi-top chromatic base: two triangles glued on an edge, plus the
# degenerate cases the single-simplex grid cannot cover.
GLUED_COLORS = (0, 1, 0, 2)
GLUED_TOPS = ((0, 1, 3), (1, 2, 3))


@pytest.fixture(scope="module", autouse=True)
def _isolated_sds_cache(tmp_path_factory):
    old = os.environ.get("REPRO_SDS_CACHE_DIR")
    os.environ["REPRO_SDS_CACHE_DIR"] = str(tmp_path_factory.mktemp("sds-cache"))
    yield
    if old is None:
        del os.environ["REPRO_SDS_CACHE_DIR"]
    else:
        os.environ["REPRO_SDS_CACHE_DIR"] = old


def assert_equivalent(sharded: ShardedSubdivision, packed) -> None:
    """Sharded and packed builds agree on every observable."""
    assert sharded.top_count == packed.top_count
    assert sharded.vertex_count == packed.vertex_count
    assert tuple(sharded.carrier_masks) == tuple(packed.carrier_masks)
    assert list(sharded.colors) == list(packed.levels[-1][0])
    assert sharded.final_views() == list(packed.levels[-1][1])
    assert list(sharded.lower_levels) == list(packed.levels[:-1])
    tops = []
    star_counts = {}
    for block in sharded.iter_shards():
        for top in block.tops():
            for vid in top:
                star_counts[vid] = star_counts.get(vid, 0) + 1
            tops.append(top)
    assert tops == list(packed.tops)
    for vid, count in star_counts.items():
        assert sharded.star_counts[vid] == count


class TestShardedBuilder:
    @pytest.mark.parametrize(
        "n,b,shard_size",
        [
            (1, 2, 1),
            (2, 2, 3),
            (2, 2, 7),
            (3, 1, 64),
            (3, 2, 997),
            (2, 3, 10**6),
        ],
        ids=lambda v: str(v),
    )
    def test_matches_packed_on_simplex_bases(self, n, b, shard_size):
        colors, tops = SIMPLEX(n)
        sharded = build_sds_sharded(colors, tops, b, shard_size=shard_size)
        packed = build_sds_packed(colors, tops, b)
        assert_equivalent(sharded, packed)

    def test_matches_packed_on_glued_base(self):
        for shard_size in (1, 5, 1000):
            sharded = build_sds_sharded(
                GLUED_COLORS, GLUED_TOPS, 2, shard_size=shard_size
            )
            packed = build_sds_packed(GLUED_COLORS, GLUED_TOPS, 2)
            assert_equivalent(sharded, packed)

    def test_to_compact_round_trip(self):
        colors, tops = SIMPLEX(2)
        sharded = build_sds_sharded(colors, tops, 2, shard_size=11)
        packed = build_sds_packed(colors, tops, 2)
        compact = sharded.to_compact()
        assert list(compact.tops) == list(packed.tops)
        assert compact.carrier_masks == packed.carrier_masks
        assert compact.levels == packed.levels

    def test_star_of_matches_recount(self):
        sharded = build_sds_sharded(*SIMPLEX(2), 2, shard_size=13)
        want: dict[int, list[int]] = {}
        for t, top in enumerate(
            top for block in sharded.iter_shards() for top in block.tops()
        ):
            for vid in top:
                want.setdefault(vid, []).append(t)
        # star_of is per-block; the global star is the in-order union.
        got: dict[int, list[int]] = {}
        for block in sharded.iter_shards():
            for vid in want:
                got.setdefault(vid, []).extend(block.star_of(vid))
        assert got == want
        for vid, star in want.items():
            assert sharded.star_counts[vid] == len(star)

    @settings(max_examples=20, deadline=None)
    @given(shard_size=st.integers(min_value=1, max_value=200))
    def test_any_shard_size_is_equivalent(self, shard_size):
        sharded = build_sds_sharded(*SIMPLEX(2), 2, shard_size=shard_size)
        packed = build_sds_packed(*SIMPLEX(2), 2)
        assert_equivalent(sharded, packed)

    def test_blocks_respect_size_plus_flush_granularity(self):
        # Flushing happens between source tops, so a block may overshoot by
        # at most one source top's expansion — never by more.
        shard_size = 64
        sharded = build_sds_sharded(*SIMPLEX(3), 2, shard_size=shard_size)
        assert sharded.shard_count > 1
        for index, top_lo, top_hi, _vl, _vh, _nb in sharded.shard_records[:-1]:
            assert top_hi - top_lo >= shard_size
            assert top_hi - top_lo < shard_size + 75  # Fubini(4) per source top


class TestShardPersistence:
    def test_open_round_trip(self):
        colors, tops = SIMPLEX(2)
        built = ensure_sharded(colors, tops, 2, shard_size=17)
        reopened = open_sharded(colors, tops, 2, shard_size=17)
        assert reopened is not None
        assert_equivalent(reopened, build_sds_packed(colors, tops, 2))
        assert reopened.store_key == built.store_key

    def test_wrong_shard_size_misses(self):
        # Fresh cache: the Hypothesis builder test above stores this same
        # structure at arbitrary shard sizes, which would turn the expected
        # miss into a legitimate hit.
        sds_cache.clear_cache()
        colors, tops = SIMPLEX(2)
        ensure_sharded(colors, tops, 2, shard_size=17)
        assert open_sharded(colors, tops, 2, shard_size=18) is None

    def test_truncated_shard_is_a_miss(self):
        colors, tops = SIMPLEX(2)
        built = ensure_sharded(colors, tops, 1, shard_size=5)
        directory = built.directory
        victim = sds_cache.shard_path(directory, built.store_key, 0)
        victim.write_bytes(victim.read_bytes()[:-3])
        assert open_sharded(colors, tops, 1, shard_size=5) is None

    def test_ensure_rebuilds_after_clear(self):
        colors, tops = SIMPLEX(1)
        first = ensure_sharded(colors, tops, 2, shard_size=3)
        sds_cache.clear_cache()
        second = ensure_sharded(colors, tops, 2, shard_size=3)
        assert second.top_count == first.top_count


class TestCacheBudget:
    def _sizes(self):
        info = sds_cache.cache_info()
        return info["bytes"] + info["shard_bytes"]

    def test_prune_evicts_lru_first(self):
        sds_cache.clear_cache()
        old = ensure_sharded(*SIMPLEX(1), 1, shard_size=2)
        new = ensure_sharded(*SIMPLEX(2), 1, shard_size=2)
        # Freshen the *older* build by opening it: mtime, not creation
        # order, is the recency signal.
        os.utime(sds_cache.manifest_path(old.directory, old.store_key), None)
        for index in range(old.shard_count):
            os.utime(sds_cache.shard_path(old.directory, old.store_key, index), None)
        total = self._sizes()
        report = sds_cache.prune(total - 1)
        assert report["removed_units"] == 1
        assert open_sharded(*SIMPLEX(1), 1, shard_size=2) is not None
        assert open_sharded(*SIMPLEX(2), 1, shard_size=2) is None
        assert new.top_count  # handle still valid in-memory

    def test_prune_zero_budget_clears_everything(self):
        ensure_sharded(*SIMPLEX(1), 1, shard_size=2)
        sds_cache.warm(1, 1)
        report = sds_cache.prune(0)
        assert report["kept_units"] == 0
        assert self._sizes() == 0

    def test_prune_within_budget_keeps_everything(self):
        sds_cache.clear_cache()
        ensure_sharded(*SIMPLEX(1), 1, shard_size=2)
        total = self._sizes()
        report = sds_cache.prune(total)
        assert report["removed_units"] == 0
        assert self._sizes() == total

    def test_prune_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            sds_cache.prune(-1)

    def test_open_touches_files(self):
        sds_cache.clear_cache()
        built = ensure_sharded(*SIMPLEX(1), 2, shard_size=3)
        manifest = sds_cache.manifest_path(built.directory, built.store_key)
        os.utime(manifest, (1, 1))
        assert open_sharded(*SIMPLEX(1), 2, shard_size=3) is not None
        assert manifest.stat().st_mtime > 1


def test_default_shard_size_is_sane():
    assert 1 <= DEFAULT_SHARD_SIZE <= 10**7

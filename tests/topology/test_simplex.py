"""Unit tests for simplices."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.simplex import Simplex, simplex
from repro.topology.vertex import Vertex, vertices_of


def tri():
    return Simplex(vertices_of(range(3)))


class TestConstruction:
    def test_dimension(self):
        assert tri().dimension == 2

    def test_vertex_simplex_dimension_zero(self):
        assert Simplex([Vertex(0)]).dimension == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Simplex([])

    def test_non_vertex_member_rejected(self):
        with pytest.raises(TypeError):
            Simplex(["not a vertex"])  # type: ignore[list-item]

    def test_duplicates_collapse(self):
        assert Simplex([Vertex(0), Vertex(0)]).dimension == 0

    def test_variadic_constructor(self):
        assert simplex(Vertex(0), Vertex(1)) == Simplex(vertices_of(range(2)))


class TestFaces:
    def test_face_count_includes_self(self):
        # 2^3 - 1 non-empty subsets
        assert len(list(tri().faces())) == 7

    def test_faces_of_dimension(self):
        assert len(list(tri().faces(1))) == 3
        assert len(list(tri().faces(0))) == 3
        assert len(list(tri().faces(2))) == 1

    def test_faces_out_of_range_empty(self):
        assert list(tri().faces(5)) == []

    def test_proper_faces_exclude_self(self):
        faces = list(tri().proper_faces())
        assert tri() not in faces
        assert len(faces) == 6

    def test_facets_are_codimension_one(self):
        facets = list(tri().facets())
        assert len(facets) == 3
        assert all(f.dimension == 1 for f in facets)

    def test_vertex_has_no_facets(self):
        assert list(Simplex([Vertex(0)]).facets()) == []

    def test_is_face_of(self):
        edge = Simplex(vertices_of(range(2)))
        assert edge.is_face_of(tri())
        assert not tri().is_face_of(edge)
        assert tri().has_face(edge)

    def test_without(self):
        result = tri().without(Vertex(0))
        assert result == Simplex([Vertex(1), Vertex(2)])

    def test_without_absent_vertex_raises(self):
        with pytest.raises(ValueError):
            tri().without(Vertex(9))

    def test_without_last_vertex_raises(self):
        with pytest.raises(ValueError):
            Simplex([Vertex(0)]).without(Vertex(0))

    def test_union_and_intersection(self):
        a = Simplex(vertices_of([0, 1]))
        b = Simplex(vertices_of([1, 2]))
        assert a.union(b) == tri()
        assert a.intersection(b) == Simplex([Vertex(1)])

    def test_disjoint_intersection_is_none(self):
        a = Simplex([Vertex(0)])
        b = Simplex([Vertex(1)])
        assert a.intersection(b) is None


class TestChromatic:
    def test_colors(self):
        assert tri().colors == frozenset({0, 1, 2})

    def test_is_chromatic(self):
        assert tri().is_chromatic
        assert not Simplex([Vertex(0, "a"), Vertex(0, "b")]).is_chromatic

    def test_vertex_of_color(self):
        assert tri().vertex_of_color(1) == Vertex(1)

    def test_vertex_of_color_missing_raises(self):
        with pytest.raises(KeyError):
            tri().vertex_of_color(7)

    def test_vertex_of_color_ambiguous_raises(self):
        s = Simplex([Vertex(0, "a"), Vertex(0, "b")])
        with pytest.raises(KeyError):
            s.vertex_of_color(0)

    def test_restrict_to_colors(self):
        assert tri().restrict_to_colors([0, 2]) == Simplex([Vertex(0), Vertex(2)])

    def test_restrict_to_missing_colors_is_none(self):
        assert tri().restrict_to_colors([9]) is None

    def test_sorted_vertices_deterministic(self):
        assert [v.color for v in tri().sorted_vertices()] == [0, 1, 2]


@given(st.sets(st.integers(min_value=0, max_value=8), min_size=1, max_size=6))
def test_face_lattice_properties(colors):
    s = Simplex(vertices_of(colors))
    faces = list(s.faces())
    # Count: 2^(n+1) - 1 non-empty subsets.
    assert len(faces) == 2 ** len(colors) - 1
    # Every face is a face of the simplex and of itself.
    for f in faces:
        assert f.is_face_of(s)
        assert f.is_face_of(f)


@given(
    st.sets(st.integers(min_value=0, max_value=6), min_size=1, max_size=5),
    st.sets(st.integers(min_value=0, max_value=6), min_size=1, max_size=5),
)
def test_union_intersection_duality(colors_a, colors_b):
    a, b = Simplex(vertices_of(colors_a)), Simplex(vertices_of(colors_b))
    union = a.union(b)
    assert a.is_face_of(union) and b.is_face_of(union)
    inter = a.intersection(b)
    if colors_a & colors_b:
        assert inter is not None
        assert inter.is_face_of(a) and inter.is_face_of(b)
    else:
        assert inter is None

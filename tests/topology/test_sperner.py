"""Sperner's lemma, verified computationally on SDS^b and Bsd^k."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.barycentric import iterated_barycentric_subdivision
from repro.topology.complex import SimplicialComplex
from repro.topology.sperner import (
    first_color_labeling,
    is_sperner_labeling,
    labeling_from_decisions,
    own_color_labeling,
    panchromatic_simplices,
    sperner_lemma_holds,
)
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
)
from repro.topology.subdivision import trivial_subdivision
from repro.topology.vertex import Vertex, vertices_of


def sds(n, b):
    base = SimplicialComplex.from_vertices(vertices_of(range(n + 1)))
    return iterated_standard_chromatic_subdivision(base, b)


def bsd(n, k):
    base = SimplicialComplex.from_vertices(vertices_of(range(n + 1)))
    return iterated_barycentric_subdivision(base, k)


class TestAdmissibility:
    def test_first_color_labeling_is_admissible(self):
        sub = sds(2, 1)
        assert is_sperner_labeling(sub, first_color_labeling(sub))

    def test_own_color_labeling_is_admissible_for_chromatic(self):
        sub = sds(2, 2)
        assert is_sperner_labeling(sub, own_color_labeling(sub))

    def test_missing_vertex_rejected(self):
        sub = sds(1, 1)
        assert not is_sperner_labeling(sub, {})

    def test_color_outside_carrier_rejected(self):
        sub = sds(1, 1)
        labeling = first_color_labeling(sub)
        # Force a corner to a foreign color.
        corner = next(v for v in sub.complex.vertices if sub.carrier(v).dimension == 0)
        labeling[corner] = 1 - corner.color
        assert not is_sperner_labeling(sub, labeling)


class TestLemma:
    @pytest.mark.parametrize("n,b", [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (3, 1)])
    def test_parity_on_sds_first_color(self, n, b):
        sub = sds(n, b)
        assert sperner_lemma_holds(sub, first_color_labeling(sub))

    @pytest.mark.parametrize("n,k", [(1, 1), (1, 2), (2, 1), (2, 2)])
    def test_parity_on_bsd(self, n, k):
        sub = bsd(n, k)
        assert sperner_lemma_holds(sub, first_color_labeling(sub))

    @pytest.mark.parametrize("n,b", [(1, 1), (2, 1), (2, 2)])
    def test_own_color_labeling_all_tops_panchromatic(self, n, b):
        sub = sds(n, b)
        labeling = own_color_labeling(sub)
        assert len(panchromatic_simplices(sub, labeling)) == len(
            sub.complex.maximal_simplices
        )
        assert sperner_lemma_holds(sub, labeling)

    def test_trivial_subdivision(self):
        base = SimplicialComplex.from_vertices(vertices_of(range(3)))
        sub = trivial_subdivision(base)
        assert sperner_lemma_holds(sub, own_color_labeling(sub))

    def test_multi_simplex_base_rejected(self):
        from repro.topology.simplex import Simplex

        two = SimplicialComplex(
            [Simplex([Vertex(0), Vertex(1)]), Simplex([Vertex(1), Vertex(2)])]
        )
        sub = trivial_subdivision(two)
        with pytest.raises(ValueError):
            sperner_lemma_holds(sub, own_color_labeling(sub))

    def test_inadmissible_labeling_rejected(self):
        sub = sds(1, 1)
        labeling = {v: 0 for v in sub.complex.vertices}  # corner 1 violates
        with pytest.raises(ValueError):
            sperner_lemma_holds(sub, labeling)

    def test_labeling_from_decisions(self):
        sub = sds(2, 1)
        labeling = labeling_from_decisions(sub, lambda v: min(sub.carrier(v).colors))
        assert labeling == first_color_labeling(sub)


@settings(max_examples=120, deadline=None)
@given(st.integers(min_value=0, max_value=2**40 - 1), st.integers(1, 2))
def test_random_admissible_labelings_satisfy_parity(seed, b):
    """Sperner's lemma over *random* admissible labelings of SDS^b(s^2).

    Each vertex independently picks a uniformly random color of its carrier,
    derived deterministically from the seed — the strongest computational
    check of the lemma we can run cheaply.
    """
    import random

    sub = sds(2, b)
    rng = random.Random(seed)
    labeling = {
        v: rng.choice(sorted(sub.carrier(v).colors)) for v in sub.complex.vertices
    }
    assert is_sperner_labeling(sub, labeling)
    assert sperner_lemma_holds(sub, labeling)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**40 - 1))
def test_random_labelings_on_bsd(seed):
    import random

    sub = bsd(2, 1)
    rng = random.Random(seed)
    labeling = {
        v: rng.choice(sorted(sub.carrier(v).colors)) for v in sub.complex.vertices
    }
    assert sperner_lemma_holds(sub, labeling)

"""Lemma 3.2 / 3.3 structure tests for the standard chromatic subdivision."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.complex import SimplicialComplex
from repro.topology.holes import betti_numbers_mod2
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    central_simplex,
    fubini,
    is_simultaneity_class,
    iterated_standard_chromatic_subdivision,
    ordered_set_partitions,
    sds_simplices_of,
    sds_vertex,
    standard_chromatic_subdivision,
    view_of,
)
from repro.topology.vertex import Vertex, vertices_of


def base_simplex_complex(n):
    return SimplicialComplex.from_vertices(vertices_of(range(n + 1)))


class TestOrderedPartitions:
    def test_counts_are_fubini(self):
        for n in range(5):
            count = sum(1 for _ in ordered_set_partitions(list(range(n))))
            assert count == fubini(n)

    def test_fubini_values(self):
        assert [fubini(n) for n in range(6)] == [1, 1, 3, 13, 75, 541]

    def test_partitions_are_partitions(self):
        items = [0, 1, 2]
        for partition in ordered_set_partitions(items):
            flattened = [x for block in partition for x in block]
            assert sorted(flattened) == items
            assert all(block for block in partition)

    def test_empty_items(self):
        assert list(ordered_set_partitions([])) == [()]

    def test_no_duplicate_partitions(self):
        partitions = list(ordered_set_partitions([0, 1, 2, 3]))
        assert len(partitions) == len(set(partitions))


class TestOneLevelSDS:
    @pytest.mark.parametrize("n,expected_tops", [(0, 1), (1, 3), (2, 13), (3, 75)])
    def test_top_simplex_count(self, n, expected_tops):
        sds = standard_chromatic_subdivision(base_simplex_complex(n))
        assert len(sds.complex.maximal_simplices) == expected_tops

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_is_chromatic_subdivision(self, n):
        sds = standard_chromatic_subdivision(base_simplex_complex(n))
        sds.validate(chromatic=True)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_purity_and_dimension(self, n):
        sds = standard_chromatic_subdivision(base_simplex_complex(n))
        assert sds.complex.is_pure()
        assert sds.complex.dimension == n

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_pseudomanifold(self, n):
        sds = standard_chromatic_subdivision(base_simplex_complex(n))
        assert sds.complex.is_pseudomanifold()

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_no_holes(self, n):
        # Lemma 2.2: a subdivided simplex has no hole of any dimension.
        sds = standard_chromatic_subdivision(base_simplex_complex(n))
        assert all(b == 0 for b in betti_numbers_mod2(sds.complex))

    def test_carrier_is_view(self):
        # Lemma 3.2: carrier(v, SDS) = P where S_i = P.
        sds = standard_chromatic_subdivision(base_simplex_complex(2))
        for vertex in sds.complex.vertices:
            assert sds.carrier(vertex) == Simplex(view_of(vertex))

    def test_vertex_count_formula(self):
        # Vertices are pairs (c, S) with c in S: sum over faces of |face|.
        sds = standard_chromatic_subdivision(base_simplex_complex(2))
        # Faces of s^2: 3 of size 1, 3 of size 2, 1 of size 3 → 3 + 6 + 3 = 12.
        assert len(sds.complex.vertices) == 12

    def test_corner_vertices_survive(self):
        base = base_simplex_complex(2)
        sds = standard_chromatic_subdivision(base)
        for corner in base.vertices:
            expected = sds_vertex(corner.color, frozenset({corner}))
            assert expected in sds.complex.vertices

    def test_central_simplex_present(self):
        sds = standard_chromatic_subdivision(base_simplex_complex(2))
        center = central_simplex(sds)
        assert center in sds.complex
        assert is_simultaneity_class(center)

    def test_immediate_snapshot_axioms_hold_on_every_simplex(self):
        sds = standard_chromatic_subdivision(base_simplex_complex(2))
        for top in sds.complex.maximal_simplices:
            views = {v.color: view_of(v) for v in top}
            # self-inclusion
            for color, view in views.items():
                assert any(u.color == color for u in view)
            # comparability
            ordered = sorted(views.values(), key=len)
            for a, b in zip(ordered, ordered[1:]):
                assert a <= b
            # knowledge
            for color, view in views.items():
                for other in view:
                    if other.color in views:
                        assert views[other.color] <= view

    def test_requires_chromatic_base(self):
        bad = SimplicialComplex([Simplex([Vertex(0, "a"), Vertex(0, "b")])])
        with pytest.raises(ValueError):
            standard_chromatic_subdivision(bad)

    def test_sds_simplices_of_rejects_non_chromatic(self):
        with pytest.raises(ValueError):
            list(sds_simplices_of(Simplex([Vertex(0, "a"), Vertex(0, "b")])))


class TestGluing:
    def test_shared_face_subdivides_consistently(self):
        # Two triangles sharing an edge: the shared edge's subdivision
        # vertices must be identical from both sides.
        shared = vertices_of(range(2))
        t1 = Simplex(shared + [Vertex(2, "left")])
        t2 = Simplex(shared + [Vertex(2, "right")])
        base = SimplicialComplex([t1, t2])
        sds = standard_chromatic_subdivision(base)
        sds.validate(chromatic=True)
        # 13 top simplices per triangle.
        assert len(sds.complex.maximal_simplices) == 26
        # The shared edge has 3 sub-edges, counted once.
        edge_face = Simplex(shared)
        restriction = sds.restrict_to_face(edge_face)
        assert len(restriction.maximal_simplices) == 3


class TestIterated:
    @pytest.mark.parametrize("b", [0, 1, 2, 3])
    def test_counts_power(self, b):
        sds = iterated_standard_chromatic_subdivision(base_simplex_complex(1), b)
        assert len(sds.complex.maximal_simplices) == 3**b

    @pytest.mark.parametrize("b", [1, 2])
    def test_counts_power_2d(self, b):
        sds = iterated_standard_chromatic_subdivision(base_simplex_complex(2), b)
        assert len(sds.complex.maximal_simplices) == 13**b

    def test_round_zero_is_trivial(self):
        base = base_simplex_complex(2)
        sds = iterated_standard_chromatic_subdivision(base, 0)
        assert sds.complex == base

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            iterated_standard_chromatic_subdivision(base_simplex_complex(1), -1)

    @pytest.mark.parametrize("b", [1, 2])
    def test_iterated_still_chromatic_subdivision(self, b):
        sds = iterated_standard_chromatic_subdivision(base_simplex_complex(2), b)
        sds.validate(chromatic=True)

    def test_carriers_compose_to_base(self):
        base = base_simplex_complex(2)
        sds2 = iterated_standard_chromatic_subdivision(base, 2)
        for vertex in sds2.complex.vertices:
            assert sds2.carrier(vertex) in base

    def test_corner_carriers_are_corners(self):
        base = base_simplex_complex(2)
        sds2 = iterated_standard_chromatic_subdivision(base, 2)
        corners = [v for v in sds2.complex.vertices if sds2.carrier(v).dimension == 0]
        # Each original corner survives through both levels exactly once.
        assert len(corners) == 3

    @pytest.mark.parametrize("b", [1, 2])
    def test_no_holes_iterated(self, b):
        sds = iterated_standard_chromatic_subdivision(base_simplex_complex(2), b)
        assert all(bn == 0 for bn in betti_numbers_mod2(sds.complex))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=2))
def test_sds_f_vector_consistency(n, b):
    if n == 3 and b == 2:
        b = 1  # keep the property test fast
    sds = iterated_standard_chromatic_subdivision(base_simplex_complex(n), b)
    f = sds.complex.f_vector()
    assert f[-1] == fubini(n + 1) ** b
    assert sds.complex.euler_characteristic() == 1  # a subdivided simplex is a disk/ball

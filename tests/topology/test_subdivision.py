"""Subdivision/carrier algebra tests."""

import pytest

from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.standard_chromatic import (
    iterated_standard_chromatic_subdivision,
    standard_chromatic_subdivision,
)
from repro.topology.subdivision import (
    Subdivision,
    boundary_restriction,
    trivial_subdivision,
)
from repro.topology.vertex import Vertex, vertices_of


def base(n):
    return SimplicialComplex.from_vertices(vertices_of(range(n + 1)))


class TestTrivial:
    def test_identity_carriers(self):
        sub = trivial_subdivision(base(2))
        for v in sub.complex.vertices:
            assert sub.carrier(v) == Simplex([v])

    def test_validates(self):
        trivial_subdivision(base(2)).validate()


class TestConstruction:
    def test_missing_carrier_rejected(self):
        b = base(1)
        with pytest.raises(ValueError):
            Subdivision(b, b, {})

    def test_carrier_not_in_base_rejected(self):
        b = base(1)
        bogus = {v: Simplex([Vertex(9)]) for v in b.vertices}
        with pytest.raises(ValueError):
            Subdivision(b, b, bogus)


class TestCarrierAlgebra:
    def test_carrier_of_simplex_is_union(self):
        sds = standard_chromatic_subdivision(base(2))
        for top in sds.complex.maximal_simplices:
            union = set()
            for v in top:
                union.update(sds.carrier(v))
            assert sds.carrier_of(top) == Simplex(union)

    def test_carrier_monotone_under_faces(self):
        sds = standard_chromatic_subdivision(base(2))
        for top in sds.complex.maximal_simplices:
            for face in top.proper_faces():
                assert sds.carrier_of(face).is_face_of(sds.carrier_of(top))


class TestFaceRestriction:
    def test_restrict_to_edge_of_sds(self):
        b = base(2)
        sds = standard_chromatic_subdivision(b)
        edge = Simplex(vertices_of(range(2)))
        restriction = sds.restrict_to_face(edge)
        # SDS of an edge: 3 sub-edges.
        assert len(restriction.maximal_simplices) == 3
        assert restriction.dimension == 1

    def test_restrict_to_corner(self):
        sds = standard_chromatic_subdivision(base(2))
        corner = Simplex([Vertex(0)])
        restriction = sds.restrict_to_face(corner)
        assert restriction.dimension == 0

    def test_restrict_to_missing_face_raises(self):
        sds = standard_chromatic_subdivision(base(1))
        with pytest.raises(ValueError):
            sds.restrict_to_face(Simplex([Vertex(9)]))

    def test_face_subdivision_is_subdivision(self):
        sds = standard_chromatic_subdivision(base(2))
        edge = Simplex(vertices_of(range(2)))
        sub = sds.face_subdivision(edge)
        sub.validate(chromatic=True)

    def test_boundary_restriction_is_sphere(self):
        sds = standard_chromatic_subdivision(base(2))
        boundary = boundary_restriction(sds)
        assert boundary is not None
        # Subdivided boundary of s^2: a 9-edge cycle.
        assert boundary.dimension == 1
        assert len(boundary.maximal_simplices) == 9
        assert boundary.euler_characteristic() == 0

    def test_boundary_restriction_of_vertex_base_is_none(self):
        sub = trivial_subdivision(SimplicialComplex([Simplex([Vertex(0)])]))
        assert boundary_restriction(sub) is None


class TestComposition:
    def test_then_composes_carriers(self):
        b = base(2)
        level1 = standard_chromatic_subdivision(b)
        level2 = standard_chromatic_subdivision(level1.complex)
        composed = level1.then(level2)
        assert composed.base == b
        composed.validate(chromatic=True)
        # Must match the iterated constructor exactly.
        direct = iterated_standard_chromatic_subdivision(b, 2)
        assert composed.complex == direct.complex
        assert composed.carriers() == direct.carriers()

    def test_then_mismatch_rejected(self):
        level1 = standard_chromatic_subdivision(base(1))
        unrelated = standard_chromatic_subdivision(base(2))
        with pytest.raises(ValueError):
            level1.then(unrelated)


class TestValidation:
    def test_validate_catches_non_onto_carriers(self):
        # A "subdivision" that misses the interior: claim the complex is a
        # subdivision of a bigger simplex it never covers.
        b = base(1)
        edge = Simplex(vertices_of(range(2)))
        sub_complex = SimplicialComplex([Simplex([Vertex(0)])])
        sub = Subdivision(b, sub_complex, {Vertex(0): Simplex([Vertex(0)])})
        with pytest.raises(ValueError):
            sub.validate()

    def test_validate_chromatic_catches_color_escape(self):
        # A vertex colored outside its carrier's colors.
        b = base(1)
        rogue = Vertex(1, "rogue")
        complex_ = SimplicialComplex(
            [Simplex([Vertex(0), rogue]), Simplex([rogue, Vertex(1)])]
        )
        carriers = {
            Vertex(0): Simplex([Vertex(0)]),
            Vertex(1): Simplex([Vertex(1)]),
            rogue: Simplex([Vertex(0)]),  # color 1 not in carrier {0}
        }
        sub = Subdivision(b, complex_, carriers)
        with pytest.raises(ValueError):
            sub.validate(chromatic=True)

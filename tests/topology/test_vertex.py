"""Unit tests for colored vertices."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.vertex import Vertex, vertices_of


class TestConstruction:
    def test_basic(self):
        v = Vertex(2, "input")
        assert v.color == 2
        assert v.payload == "input"

    def test_default_payload_is_none(self):
        assert Vertex(0).payload is None

    def test_negative_color_rejected(self):
        with pytest.raises(ValueError):
            Vertex(-1)

    def test_non_int_color_rejected(self):
        with pytest.raises(ValueError):
            Vertex("red")  # type: ignore[arg-type]

    def test_unhashable_payload_rejected(self):
        with pytest.raises(TypeError):
            Vertex(0, ["list"])  # type: ignore[arg-type]

    def test_bool_is_accepted_as_int_color(self):
        # bool is a subclass of int; document the (harmless) behaviour.
        assert Vertex(True).color == 1


class TestEquality:
    def test_equal_by_value(self):
        assert Vertex(1, "x") == Vertex(1, "x")

    def test_distinct_payloads_differ(self):
        assert Vertex(1, "x") != Vertex(1, "y")

    def test_distinct_colors_differ(self):
        assert Vertex(1, "x") != Vertex(2, "x")

    def test_hashable_and_usable_in_sets(self):
        s = {Vertex(0, "a"), Vertex(0, "a"), Vertex(1, "a")}
        assert len(s) == 2

    def test_nested_frozenset_payload(self):
        inner = frozenset({Vertex(0, "a")})
        v = Vertex(1, inner)
        assert v == Vertex(1, frozenset({Vertex(0, "a")}))


class TestHelpers:
    def test_with_payload(self):
        v = Vertex(3, "old").with_payload("new")
        assert v == Vertex(3, "new")

    def test_sort_key_orders_by_color_first(self):
        vs = [Vertex(1, "a"), Vertex(0, "z")]
        assert sorted(vs, key=Vertex.sort_key)[0].color == 0

    def test_vertices_of(self):
        vs = vertices_of(range(3), payload="p")
        assert [v.color for v in vs] == [0, 1, 2]
        assert all(v.payload == "p" for v in vs)

    def test_repr_mentions_color(self):
        assert "2" in repr(Vertex(2))


@given(st.integers(min_value=0, max_value=100), st.text(max_size=5))
def test_roundtrip_equality_property(color, payload):
    assert Vertex(color, payload) == Vertex(color, payload)
    assert hash(Vertex(color, payload)) == hash(Vertex(color, payload))


@given(
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=0, max_value=10),
    st.text(max_size=3),
    st.text(max_size=3),
)
def test_equality_iff_components_equal(c1, c2, p1, p2):
    equal = Vertex(c1, p1) == Vertex(c2, p2)
    assert equal == ((c1, p1) == (c2, p2))
